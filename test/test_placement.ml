(* Tests for the adaptive page-placement subsystem: pure policy
   decisions, hotness bookkeeping, engine determinism (same seed, same
   actions; Paranoid agrees with Fast), the no-cost guarantee of
   Static_stramash, the replicate -> write-collapse -> re-replicate
   bit-identity property, a chaos campaign under Adaptive placement,
   and the Fused_namespace / Data_packing core modules. *)

module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Liveness = Stramash_sim.Liveness
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Namespace = Stramash_kernel.Namespace
module Fused_namespace = Stramash_core.Fused_namespace
module Data_packing = Stramash_core.Data_packing
module Policy = Stramash_placement.Policy
module Hotness = Stramash_placement.Hotness
module Engine = Stramash_placement.Engine
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Spec = Stramash_machine.Spec
module Mir = Stramash_isa.Mir
module B = Stramash_isa.Builder
module FE = Stramash_harness.Fault_experiments
module CE = Stramash_harness.Chaos_experiments
module PE = Stramash_harness.Placement_experiments

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let x86 = Node_id.X86
let arm = Node_id.Arm
let shared = Layout.Shared

(* ---------- Policy.decide: pure decision table ---------- *)

let view ?(home = x86) ?(reads = [| 0; 0 |]) ?(writes = [| 0; 0 |]) ?(remote = [| 0; 0 |])
    ?(gain_per_miss = 100) ?(act_cost = 4_000) ?(payback = 1) ?(min_remote = 4) ?(age = 10)
    ?(warmup = 5) () =
  { Policy.home; reads; writes; remote; gain_per_miss; act_cost; payback; min_remote; age; warmup }

(* home = X86, so the peer (Arm) has node index 1 *)
let hot_remote_reads = [| 0; 200 |]

let test_policy_statics () =
  let v = view ~reads:hot_remote_reads ~remote:hot_remote_reads () in
  checkb "static-stramash never acts" true (Policy.decide Policy.Static_stramash v = Policy.Keep);
  checkb "static-shm replicates on any remote read" true
    (Policy.decide Policy.Static_shm (view ~remote:[| 0; 1 |] ()) = Policy.Replicate arm);
  checkb "static-shm keeps untouched pages" true
    (Policy.decide Policy.Static_shm (view ()) = Policy.Keep)

let test_policy_adaptive_replicate () =
  let v = view ~reads:hot_remote_reads ~remote:hot_remote_reads () in
  checkb "read-hot remote page replicates at the reader" true
    (Policy.decide Policy.Adaptive v = Policy.Replicate arm);
  (* same heat, but the far node also writes: no replica *)
  let v = view ~reads:hot_remote_reads ~remote:hot_remote_reads ~writes:[| 0; 3 |] () in
  checkb "written pages do not replicate" true (Policy.decide Policy.Adaptive v <> Policy.Replicate arm)

let test_policy_adaptive_thresholds () =
  (* below the noise floor *)
  let v = view ~remote:[| 0; 3 |] ~min_remote:4 () in
  checkb "below min_remote keeps" true (Policy.decide Policy.Adaptive v = Policy.Keep);
  (* benefit fails to amortise the act cost *)
  let v = view ~remote:[| 0; 200 |] ~gain_per_miss:10 ~act_cost:1_000_000 () in
  checkb "unamortised cost keeps" true (Policy.decide Policy.Adaptive v = Policy.Keep);
  (* warmup gate: identical heat, young page *)
  let v = view ~reads:hot_remote_reads ~remote:hot_remote_reads ~age:2 ~warmup:5 () in
  checkb "young page keeps during warmup" true (Policy.decide Policy.Adaptive v = Policy.Keep)

let test_policy_adaptive_migrate () =
  (* far node owns the page outright, writes included: home moves *)
  let v =
    view ~reads:[| 0; 100 |] ~writes:[| 0; 50 |] ~remote:[| 0; 150 |] ~act_cost:1_000 ()
  in
  checkb "write-owned remote page migrates" true (Policy.decide Policy.Adaptive v = Policy.Migrate arm);
  (* any home-side activity pins the frame *)
  let v =
    view ~reads:[| 1; 100 |] ~writes:[| 0; 50 |] ~remote:[| 0; 150 |] ~act_cost:1_000 ()
  in
  checkb "home-side reads pin the frame" true (Policy.decide Policy.Adaptive v <> Policy.Migrate arm)

let test_policy_strings () =
  List.iter
    (fun p -> checkb (Policy.to_string p) true (Policy.of_string (Policy.to_string p) = Some p))
    Policy.all;
  checkb "unknown policy rejected" true (Policy.of_string "optimal" = None)

(* ---------- Hotness: counters, born epoch, decay, ordering ---------- *)

let test_hotness_counters () =
  let h = Hotness.create () in
  let va = 0x1000_0000 in
  Hotness.touch h ~pid:1 ~node:arm ~vaddr:(va + 24) ~write:false ~remote:true ~now:3;
  Hotness.touch h ~pid:1 ~node:arm ~vaddr:(va + 48) ~write:false ~remote:true ~now:4;
  Hotness.touch h ~pid:1 ~node:x86 ~vaddr:va ~write:true ~remote:false ~now:5;
  let p = Option.get (Hotness.page_stats h ~pid:1 ~vaddr:va) in
  checki "born at first touch" 3 p.Hotness.born;
  checki "arm reads aggregated per page" 2 p.Hotness.reads.(Node_id.index arm);
  checki "remote accesses counted" 2 p.Hotness.remote.(Node_id.index arm);
  checki "x86 writes counted" 1 p.Hotness.writes.(Node_id.index x86);
  checki "three samples" 3 (Hotness.samples h);
  checki "one page tracked" 1 (Hotness.size h)

let test_hotness_decay () =
  let h = Hotness.create () in
  let va = 0x1000_0000 in
  for _ = 1 to 8 do
    Hotness.touch h ~pid:1 ~node:arm ~vaddr:va ~write:false ~remote:true ~now:0
  done;
  Hotness.decay h;
  let p = Option.get (Hotness.page_stats h ~pid:1 ~vaddr:va) in
  checki "decay halves" 4 p.Hotness.reads.(Node_id.index arm);
  (* age the page to silence: it must drop out of the table *)
  Hotness.decay h;
  Hotness.decay h;
  Hotness.decay h;
  checkb "silent pages dropped" true (Hotness.page_stats h ~pid:1 ~vaddr:va = None)

let test_hotness_sorted () =
  let h = Hotness.create () in
  Hotness.touch h ~pid:2 ~node:arm ~vaddr:0x3000 ~write:false ~remote:true ~now:0;
  Hotness.touch h ~pid:1 ~node:arm ~vaddr:0x2000 ~write:false ~remote:true ~now:0;
  Hotness.touch h ~pid:1 ~node:arm ~vaddr:0x1000 ~write:false ~remote:true ~now:0;
  let keys = List.map fst (Hotness.to_sorted h) in
  checkb "deterministic (pid, page) order" true
    (keys = [ (1, 0x1000); (1, 0x2000); (2, 0x3000) ])

(* ---------- Engine on a real machine ---------- *)

let small_cg = Option.get (FE.spec_of_bench "cg")

let fingerprint (result : Runner.result) engine =
  (result.Runner.wall_cycles, result.Runner.instructions, result.Runner.migrations,
   Engine.counters engine)

let test_determinism_same_seed () =
  let run () =
    let machine, engine, proc, result = PE.run_policy ~policy:Policy.Adaptive small_cg in
    let fp = fingerprint result engine in
    Machine.exit_process machine proc;
    fp
  in
  checkb "same seed, same decisions and wall" true (run () = run ())

let test_paranoid_agrees_with_fast () =
  let run mode =
    let machine, engine, proc, result =
      PE.run_policy ~cache_mode:mode ~policy:Policy.Adaptive small_cg
    in
    let fp = fingerprint result engine in
    Machine.exit_process machine proc;
    fp
  in
  checkb "paranoid engine fingerprint matches fast" true
    (run Cache_sim.Fast = run Cache_sim.Paranoid)

let test_static_stramash_is_free () =
  (* sampling must be cost-free: a Static_stramash engine changes nothing *)
  let with_engine =
    let machine, engine, proc, result = PE.run_policy ~policy:Policy.Static_stramash small_cg in
    checki "static-stramash takes no action" 0
      (List.assoc "placement.replications" (Engine.counters engine)
      + List.assoc "placement.migrations" (Engine.counters engine));
    Machine.exit_process machine proc;
    result.Runner.wall_cycles
  in
  let bare =
    let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
    let proc, thread = Machine.load machine small_cg in
    let result = Runner.run machine proc thread small_cg in
    Machine.exit_process machine proc;
    result.Runner.wall_cycles
  in
  checki "engine-attached wall equals bare wall" bare with_engine

let test_adaptive_acts_on_cg () =
  let machine, engine, proc, result = PE.run_policy ~policy:Policy.Adaptive small_cg in
  let c = Engine.counters engine in
  checkb "samples flowed" true (List.assoc "placement.samples" c > 0);
  checkb "epochs ticked" true (List.assoc "placement.epochs" c > 0);
  checkb "result ext mirrors engine counters" true (result.Runner.ext.Runner.placement = c);
  Machine.exit_process machine proc;
  checki "teardown drains live replicas" 0 (Engine.live_replicas engine)

(* ---------- Replicate -> collapse -> re-replicate bit-identity ---------- *)

(* A probe workload built for the property: one heap page is
   eager-initialised with a pattern at the origin (X86), the thread
   migrates to Arm and read-loops over that page while streaming a pad
   working set twice the scaled L3, so the page classifies as
   remote-hot and replicates.  One remote write then collapses the
   replica; further read loops re-heat it; the thread finally returns
   to X86 and sweeps the page once so the origin page table maps it for
   verification.  (Initialising through segment [init] rather than
   program stores matters: sampled init writes would leave decaying
   write history that bars replication for most of this short run.) *)

let page_base = Spec.heap_base
let pad_base = Spec.heap_base + 0x10_0000
let pad_len = 512 * 1024

let roundtrip_spec values read_iters =
  let b = B.create () in
  let page = B.immi b page_base in
  let pad = B.immi b pad_base in
  B.migrate_point b 1;
  let acc = B.immi b 0 in
  let page_sweep () =
    B.for_up_const b ~lo:0 ~hi:(Array.length values) (fun i ->
        let v = B.load b Mir.W64 (Mir.indexed page i ~scale:8) in
        B.add_to b acc acc v)
  in
  let sweep () =
    page_sweep ();
    (* stride one line through the pad so the page cannot hide in L3 *)
    B.for_up_const b ~lo:0 ~hi:(pad_len / Addr.line_size) (fun i ->
        let off = B.shli b i 6 in
        let v = B.load b Mir.W64 (Mir.indexed pad off ~scale:1) in
        B.add_to b acc acc v)
  in
  for _ = 1 to read_iters do
    sweep ()
  done;
  (* one remote write: must collapse any replica before landing *)
  B.store b Mir.W64 acc (Mir.based_disp page 0);
  for _ = 1 to read_iters do
    sweep ()
  done;
  B.migrate_point b 2;
  page_sweep ();
  {
    Spec.name = "placement-roundtrip";
    description = "replicate/collapse/re-replicate bit-identity probe";
    mir = B.finish b;
    segments =
      [
        Spec.segment ~base:page_base ~len:Addr.page_size ~init:(Spec.I64s values) ();
        Spec.segment ~base:pad_base ~len:pad_len ();
      ];
    migration_targets = [ (1, arm); (2, x86) ];
  }

let read_word machine proc vaddr =
  match Machine.read_user machine ~proc ~node:x86 ~vaddr ~width:8 with
  | Some v -> v
  | None -> (
      match Machine.read_user machine ~proc ~node:arm ~vaddr ~width:8 with
      | Some v -> v
      | None -> Alcotest.failf "vaddr %#x unmapped on both nodes" vaddr)

let run_roundtrip ~with_engine spec =
  let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
  let engine =
    if not with_engine then None
    else
      match Machine.os machine with
      | Os.Stramash os ->
          (* eager settings so the short probe exercises the full cycle *)
          (* eager settings: tick every quantum, act on the first remote
             miss, amortise over a long horizon so the short probe's
             modest per-epoch heat clears the copy + shootdown cost *)
          let e =
            Engine.create ~epoch:1 ~max_actions:1000 ~payback:100 ~min_remote:0 ~cooldown:0
              ~warmup:0 ~policy:Policy.Adaptive os
          in
          Machine.attach_placement machine e;
          Some e
      | _ -> assert false
  in
  let proc, thread = Machine.load machine spec in
  ignore (Runner.run machine proc thread spec);
  (machine, proc, engine)

let prop_roundtrip_bit_identity =
  QCheck.Test.make ~count:5 ~name:"replicate/collapse round-trip is bit-identical"
    QCheck.(pair (list_of_size Gen.(int_range 1 64) int64) (int_range 2 3))
    (fun (values, read_iters) ->
      (* the shrinker may step outside the generator's bounds *)
      QCheck.assume (values <> [] && read_iters >= 1);
      (* pad the pattern to a full 64-word stripe: the probe needs the
         whole page's worth of line misses per sweep to clear the
         adaptive cost model's act threshold within the short run *)
      let values =
        Array.init 64 (fun i -> match List.nth_opt values i with Some v -> v | None -> 0L)
      in
      let spec = roundtrip_spec values read_iters in
      let words = Array.length values in
      let snapshot (machine, proc, _) =
        Array.init words (fun i -> read_word machine proc (page_base + (8 * i)))
      in
      let placed = run_roundtrip ~with_engine:true spec in
      let bare = run_roundtrip ~with_engine:false spec in
      let same = snapshot placed = snapshot bare in
      let _, _, engine = placed in
      let c = Engine.counters (Option.get engine) in
      let acted =
        List.assoc "placement.replications" c >= 2 && List.assoc "placement.collapses" c >= 1
      in
      let (m1, p1, _), (m2, p2, _) = (placed, bare) in
      Machine.exit_process m1 p1;
      Machine.exit_process m2 p2;
      if not acted then QCheck.Test.fail_report "probe never replicated/collapsed";
      same)

(* ---------- Campaign verdicts and chaos interaction ---------- *)

let null_fmt () =
  let buf = Buffer.create 4096 in
  Format.formatter_of_buffer buf

let test_campaign_unknown_bench () =
  checki "unknown bench is the CLI's exit 2" 2
    (CE.exit_code (PE.campaign (null_fmt ()) ~bench:"nope" ()))

let test_campaign_clean () =
  checkb "adaptive cg campaign is clean" true (PE.campaign (null_fmt ()) () = CE.Clean)

let test_chaos_with_placement_clean () =
  checkb "chaos campaign stays clean under adaptive placement" true
    (CE.campaign (null_fmt ()) ~kills:2 ~placement:Policy.Adaptive () = CE.Clean)

(* ---------- Core: Fused_namespace ---------- *)

let boot_pair () =
  let phys = Phys_mem.create () in
  (Kernel.boot ~node:x86 ~phys, Kernel.boot ~node:arm ~phys)

let test_fused_namespace_environment () =
  let k1, k2 = boot_pair () in
  checkb "freshly booted kernels see different environments" false
    (Fused_namespace.same_environment k1.Kernel.ns k2.Kernel.ns);
  let fused = Fused_namespace.fuse_kernels k1 k2 in
  checkb "fused set matches the boot kernel's view" true
    (Fused_namespace.same_environment fused k1.Kernel.ns);
  List.iter
    (fun kind ->
      checki
        (Printf.sprintf "%s id preserved by fusion" (Namespace.kind_to_string kind))
        (Namespace.id k1.Kernel.ns kind) (Namespace.id fused kind))
    Namespace.all_kinds

let test_fused_namespace_cpu_list () =
  let cpus = Fused_namespace.cpu_list ~cores_per_node:4 in
  checki "one entry per core per node" (4 * List.length Node_id.all) (List.length cpus);
  List.iter
    (fun node ->
      let cores =
        List.filter_map
          (fun c -> if c.Namespace.node = node then Some c.Namespace.core else None)
          cpus
      in
      checkb (Node_id.to_string node ^ " cores enumerated") true (cores = [ 0; 1; 2; 3 ]))
    Node_id.all

(* ---------- Core: Data_packing ---------- *)

let make_env () =
  let cache = Cache_sim.create (Cache_config.default shared) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:x86 ~phys; Kernel.boot ~node:arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = shared;
    liveness = Liveness.create ();
  }

let test_data_packing_pack () =
  let env = make_env () in
  let dp = Data_packing.create env ~owner:x86 ~window_bytes:(2 * Addr.page_size) in
  let w = Data_packing.window dp in
  checki "window spans the requested bytes" (2 * Addr.page_size) (Layout.region_size w);
  (* stage a recognisable object outside the window and pack it *)
  let src = Kernel.alloc_frame_exn (Env.kernel env x86) in
  Phys_mem.write_u64 env.Env.phys src 0xDEAD_BEEFL;
  Phys_mem.write_u64 env.Env.phys (src + 8) 0xCAFEL;
  (match Data_packing.pack dp ~src ~bytes:16 with
  | Error `Window_full -> Alcotest.fail "pack refused an empty window"
  | Ok packed ->
      checkb "packed address inside the window" true (Layout.region_contains w packed);
      checkb "bytes moved" true
        (Phys_mem.read_u64 env.Env.phys packed = 0xDEAD_BEEFL
        && Phys_mem.read_u64 env.Env.phys (packed + 8) = 0xCAFEL));
  checki "packed_bytes advances" 16 (Data_packing.packed_bytes dp);
  checki "one object packed" 1 (Data_packing.objects_packed dp);
  checkb "window eventually fills" true
    (Data_packing.pack dp ~src ~bytes:(3 * Addr.page_size) = Error `Window_full)

let test_data_packing_mpu () =
  let env = make_env () in
  let dp = Data_packing.create env ~owner:x86 ~window_bytes:Addr.page_size in
  let w = Data_packing.window dp in
  let private_paddr = Kernel.alloc_frame_exn (Env.kernel env x86) in
  checkb "window is remotely accessible" true
    (Data_packing.remote_access_allowed dp ~paddr:w.Layout.lo);
  checkb "owner-private frame is not" false
    (Data_packing.remote_access_allowed dp ~paddr:private_paddr);
  checkb "owner always passes" true (Data_packing.check_remote_access dp ~actor:x86 ~paddr:private_paddr = Ok ());
  checkb "remote access to the window passes" true
    (Data_packing.check_remote_access dp ~actor:arm ~paddr:w.Layout.lo = Ok ());
  checkb "remote access outside is a violation" true
    (Data_packing.check_remote_access dp ~actor:arm ~paddr:private_paddr
    = Error `Protection_violation);
  checki "violations counted" 1 (Data_packing.violations dp)

(* ---------- suite ---------- *)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_bit_identity ]

let () =
  Alcotest.run "placement"
    [
      ( "policy",
        [
          Alcotest.test_case "statics" `Quick test_policy_statics;
          Alcotest.test_case "adaptive replicate" `Quick test_policy_adaptive_replicate;
          Alcotest.test_case "adaptive thresholds" `Quick test_policy_adaptive_thresholds;
          Alcotest.test_case "adaptive migrate" `Quick test_policy_adaptive_migrate;
          Alcotest.test_case "string round-trip" `Quick test_policy_strings;
        ] );
      ( "hotness",
        [
          Alcotest.test_case "counters + born" `Quick test_hotness_counters;
          Alcotest.test_case "decay" `Quick test_hotness_decay;
          Alcotest.test_case "sorted order" `Quick test_hotness_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_determinism_same_seed;
          Alcotest.test_case "paranoid agrees with fast" `Quick test_paranoid_agrees_with_fast;
          Alcotest.test_case "static-stramash is free" `Quick test_static_stramash_is_free;
          Alcotest.test_case "adaptive samples cg" `Quick test_adaptive_acts_on_cg;
        ] );
      ("roundtrip", qsuite);
      ( "campaign",
        [
          Alcotest.test_case "unknown bench" `Quick test_campaign_unknown_bench;
          Alcotest.test_case "adaptive cg clean" `Quick test_campaign_clean;
          Alcotest.test_case "chaos under placement" `Quick test_chaos_with_placement_clean;
        ] );
      ( "fused-namespace",
        [
          Alcotest.test_case "environment fusion" `Quick test_fused_namespace_environment;
          Alcotest.test_case "cpu list" `Quick test_fused_namespace_cpu_list;
        ] );
      ( "data-packing",
        [
          Alcotest.test_case "pack into window" `Quick test_data_packing_pack;
          Alcotest.test_case "mpu checks" `Quick test_data_packing_mpu;
        ] );
    ]
