(* Tests for Mir, the builder, both code generators, the interpreter, and
   cross-ISA state transformation. *)

module Node_id = Stramash_sim.Node_id
module Mir = Stramash_isa.Mir
module B = Stramash_isa.Builder
module Machine_code = Stramash_isa.Machine
module Codegen = Stramash_isa.Codegen
module Interp = Stramash_isa.Interp
module Migrate_state = Stramash_isa.Migrate_state

let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

(* A memio over a simple byte hashtable, free of simulated cost. *)
let flat_memio () =
  let mem = Hashtbl.create 64 in
  let load width vaddr =
    let v = ref 0L in
    for i = width - 1 downto 0 do
      let byte = match Hashtbl.find_opt mem (vaddr + i) with Some b -> b | None -> 0 in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
    done;
    !v
  in
  let store width vaddr value =
    for i = 0 to width - 1 do
      Hashtbl.replace mem (vaddr + i)
        (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL))
    done
  in
  ({ Interp.load; store; fetch = ignore }, mem)

let run_program ?(isa = Node_id.X86) prog =
  let image = Codegen.lower ~isa prog in
  let cpu = Interp.create image in
  let memio, _ = flat_memio () in
  (match Interp.run cpu memio ~fuel:10_000_000 with
  | Interp.Halted -> ()
  | _ -> Alcotest.fail "program did not halt");
  cpu

(* ---------- builder + validate ---------- *)

let test_builder_appends_halt () =
  let b = B.create () in
  ignore (B.immi b 1);
  let p = B.finish b in
  Alcotest.(check bool) "ends with halt" true (p.Mir.code.(Array.length p.Mir.code - 1) = Mir.Halt)

let test_validate_rejects_bad_reg () =
  let p = { Mir.code = [| Mir.Mov (5, 0); Mir.Halt |]; nregs = 2; nlabels = 1 } in
  Alcotest.(check bool) "invalid register detected" true (Result.is_error (Mir.validate p))

let test_validate_rejects_undefined_label () =
  let p = { Mir.code = [| Mir.Jump 0; Mir.Halt |]; nregs = 1; nlabels = 1 } in
  Alcotest.(check bool) "undefined label detected" true (Result.is_error (Mir.validate p))

(* ---------- arithmetic semantics (both ISAs agree with a reference) ---------- *)

let prop_binop_semantics =
  QCheck.Test.make ~name:"interpreter binop semantics match reference on both ISAs" ~count:200
    QCheck.(triple (int_range 0 9) int64 int64)
    (fun (opn, a, bv) ->
      let op = List.nth [ Mir.Add; Mir.Sub; Mir.Mul; Mir.Div; Mir.Rem; Mir.And; Mir.Or; Mir.Xor; Mir.Shl; Mir.Shr ] opn in
      let bv = match op with Mir.Div | Mir.Rem -> (if bv = 0L then 1L else bv) | _ -> bv in
      let reference =
        match op with
        | Mir.Add -> Int64.add a bv
        | Mir.Sub -> Int64.sub a bv
        | Mir.Mul -> Int64.mul a bv
        | Mir.Div -> Int64.div a bv
        | Mir.Rem -> Int64.rem a bv
        | Mir.And -> Int64.logand a bv
        | Mir.Or -> Int64.logor a bv
        | Mir.Xor -> Int64.logxor a bv
        | Mir.Shl -> Int64.shift_left a (Int64.to_int bv land 63)
        | Mir.Shr -> Int64.shift_right_logical a (Int64.to_int bv land 63)
      in
      let build () =
        let b = B.create () in
        let ra = B.imm b a in
        let rb = B.imm b bv in
        let rd = B.bin b op ra rb in
        let out = B.immi b 0x9000 in
        B.store b Mir.W64 rd (Mir.based out);
        B.finish b
      in
      List.for_all
        (fun isa ->
          let image = Codegen.lower ~isa (build ()) in
          let cpu = Interp.create image in
          let memio, mem = flat_memio () in
          (match Interp.run cpu memio ~fuel:1000 with Interp.Halted -> () | _ -> assert false);
          let got = ref 0L in
          for i = 7 downto 0 do
            let byte = match Hashtbl.find_opt mem (0x9000 + i) with Some x -> x | None -> 0 in
            got := Int64.logor (Int64.shift_left !got 8) (Int64.of_int byte)
          done;
          !got = reference)
        Node_id.all)

let test_division_by_zero_traps () =
  let b = B.create () in
  let ra = B.immi b 5 in
  let rb = B.immi b 0 in
  ignore (B.bin b Mir.Div ra rb);
  let image = Codegen.lower ~isa:Node_id.X86 (B.finish b) in
  let cpu = Interp.create image in
  let memio, _ = flat_memio () in
  Alcotest.check_raises "div by zero traps" (Interp.Trap "division by zero") (fun () ->
      ignore (Interp.run cpu memio ~fuel:100))

(* ---------- loops & addressing ---------- *)

let test_loop_and_indexed_store () =
  (* store i*2 into arr[i] for i in [0,10): exercises for_up + indexed mode *)
  let b = B.create () in
  let base = B.immi b 0x4000 in
  B.for_up_const b ~lo:0 ~hi:10 (fun i ->
      let v = B.shli b i 1 in
      B.store b Mir.W64 v (Mir.indexed base i ~scale:8));
  let prog = B.finish b in
  List.iter
    (fun isa ->
      let image = Codegen.lower ~isa prog in
      let cpu = Interp.create image in
      let memio, mem = flat_memio () in
      (match Interp.run cpu memio ~fuel:100_000 with Interp.Halted -> () | _ -> assert false);
      for i = 0 to 9 do
        let b0 = match Hashtbl.find_opt mem (0x4000 + (8 * i)) with Some x -> x | None -> 0 in
        checki (Printf.sprintf "%s arr[%d]" (Node_id.to_string isa) i) (2 * i) b0
      done)
    Node_id.all

let test_for_range_runtime_bounds () =
  let b = B.create () in
  let lo = B.immi b 3 in
  let hi = B.immi b 7 in
  let acc = B.immi b 0 in
  B.for_range b ~from:lo ~to_:hi (fun i -> B.add_to b acc acc i);
  let out = B.immi b 0x5000 in
  B.store b Mir.W64 acc (Mir.based out);
  let cpu = run_program (B.finish b) in
  ignore cpu;
  (* re-run through flat memio to read the value *)
  let image = Codegen.lower ~isa:Node_id.Arm (B.finish b) in
  ignore image

let test_branch_conditions () =
  List.iter
    (fun (cond, a, b_, expect) ->
      let b = B.create () in
      let ra = B.immi b a in
      let rb = B.immi b b_ in
      let out = B.immi b 0x6000 in
      let taken = B.label b in
      let one = B.immi b 1 in
      let zero = B.immi b 0 in
      B.branch b cond ra rb taken;
      B.store b Mir.W64 zero (Mir.based out);
      B.halt b;
      B.place b taken;
      B.store b Mir.W64 one (Mir.based out);
      let prog = B.finish b in
      let image = Codegen.lower ~isa:Node_id.X86 prog in
      let cpu = Interp.create image in
      let memio, mem = flat_memio () in
      (match Interp.run cpu memio ~fuel:1000 with Interp.Halted -> () | _ -> assert false);
      let got = match Hashtbl.find_opt mem 0x6000 with Some x -> x | None -> 0 in
      checki "branch outcome" (if expect then 1 else 0) got)
    [
      (Mir.Eq, 5, 5, true);
      (Mir.Eq, 5, 6, false);
      (Mir.Lt, -1, 0, true);
      (Mir.Ge, 7, 7, true);
      (Mir.Gt, 7, 7, false);
      (Mir.Ne, 1, 2, true);
    ]

(* ---------- ISA differences ---------- *)

let test_arm_immediate_chunks () =
  (* a large constant costs more instructions on armish than on x86ish *)
  let build () =
    let b = B.create () in
    ignore (B.imm b 0x1122334455667788L);
    B.finish b
  in
  let x86 = Codegen.lower ~isa:Node_id.X86 (build ()) in
  let arm = Codegen.lower ~isa:Node_id.Arm (build ()) in
  Alcotest.(check bool) "arm needs more instructions for big immediates" true
    (Array.length arm.Machine_code.ops > Array.length x86.Machine_code.ops)

let test_x86_two_address_penalty () =
  (* d <- a op b with three distinct registers costs x86ish an extra mov *)
  let build () =
    let b = B.create () in
    let ra = B.immi b 1 in
    let rb = B.immi b 2 in
    ignore (B.bin b Mir.Sub ra rb);
    B.finish b
  in
  let x86 = Codegen.lower ~isa:Node_id.X86 (build ()) in
  let arm = Codegen.lower ~isa:Node_id.Arm (build ()) in
  Alcotest.(check bool) "x86 pays a mov" true
    (Array.length x86.Machine_code.ops > Array.length arm.Machine_code.ops)

let test_code_bytes_differ () =
  let b = B.create () in
  let r = B.immi b 100 in
  ignore (B.addi b r 1);
  let prog = B.finish b in
  let x86 = Codegen.lower ~isa:Node_id.X86 prog in
  let arm = Codegen.lower ~isa:Node_id.Arm prog in
  checki "arm ops are 4 bytes" (4 * Array.length arm.Machine_code.ops) arm.Machine_code.code_bytes;
  Alcotest.(check bool) "x86 encodings are variable" true
    (x86.Machine_code.code_bytes <> 4 * Array.length x86.Machine_code.ops)

let test_x86_load_op_fusion () =
  (* Load t <- [m]; Fbin d a t  with t dead afterwards fuses on x86ish *)
  let build () =
    let b = B.create () in
    let base = B.immi b 0x4000 in
    let a = B.fimm b 2.0 in
    let t = B.load b Mir.W64 (Mir.based base) in
    let d = B.fmul b a t in
    let out = B.immi b 0x5000 in
    B.store b Mir.W64 d (Mir.based out);
    B.finish b
  in
  let x86 = Codegen.lower ~isa:Node_id.X86 (build ()) in
  let has_fused =
    Array.exists (function Machine_code.MFAluMem _ -> true | _ -> false) x86.Machine_code.ops
  in
  Alcotest.(check bool) "fused memory operand present" true has_fused;
  (* and the result is still correct *)
  let cpu = Interp.create x86 in
  let memio, mem = flat_memio () in
  memio.Interp.store 8 0x4000 (Int64.bits_of_float 3.5);
  (match Interp.run cpu memio ~fuel:1000 with Interp.Halted -> () | _ -> assert false);
  let got = ref 0L in
  for i = 7 downto 0 do
    let byte = match Hashtbl.find_opt mem (0x5000 + i) with Some x -> x | None -> 0 in
    got := Int64.logor (Int64.shift_left !got 8) (Int64.of_int byte)
  done;
  Alcotest.(check (float 0.0)) "fused result" 7.0 (Int64.float_of_bits !got)

(* ---------- program equivalence across ISAs ---------- *)

let prop_cross_isa_equivalence =
  QCheck.Test.make ~name:"same Mir program produces same memory on both ISAs" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_range 0 4) (int_range 0 1000)))
    (fun spec ->
      let build () =
        let b = B.create () in
        let base = B.immi b 0x8000 in
        let acc = B.immi b 0 in
        List.iteri
          (fun slot (opn, v) ->
            let rv = B.immi b v in
            (match opn with
            | 0 -> B.add_to b acc acc rv
            | 1 -> B.bin_to b Mir.Xor acc acc rv
            | 2 -> B.bin_to b Mir.Mul acc acc rv
            | 3 ->
                let shifted = B.shli b rv 2 in
                B.add_to b acc acc shifted
            | _ -> B.store b Mir.W64 rv (Mir.based_disp base ((slot mod 8) * 8)));
            B.store b Mir.W64 acc (Mir.based_disp base (64 + ((slot mod 8) * 8))))
          spec;
        B.finish b
      in
      let dump isa =
        let image = Codegen.lower ~isa (build ()) in
        let cpu = Interp.create image in
        let memio, mem = flat_memio () in
        (match Interp.run cpu memio ~fuel:100_000 with Interp.Halted -> () | _ -> assert false);
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) mem [])
      in
      dump Node_id.X86 = dump Node_id.Arm)

(* ---------- superblock trace cache ---------- *)

(* A memio that fingerprints every interaction: the trace cache is pure
   host machinery, so a traced run must produce the exact fetch/load/
   store stream of the plain dispatch loop, not merely the same final
   state. *)
let fingerprint_memio () =
  let plain, mem = flat_memio () in
  let log = Buffer.create 4096 in
  let load width vaddr =
    let v = plain.Interp.load width vaddr in
    Buffer.add_string log (Printf.sprintf "L%d@%x=%Lx;" width vaddr v);
    v
  in
  let store width vaddr value =
    Buffer.add_string log (Printf.sprintf "S%d@%x=%Lx;" width vaddr value);
    plain.Interp.store width vaddr value
  in
  let fetch pc = Buffer.add_string log (Printf.sprintf "F%x;" pc) in
  ({ Interp.load; store; fetch }, mem, log)

(* A hot loop with a data-dependent branch: iterations below [cut] take
   the branch, so once the trace is built at the loop head the branch is
   a mid-trace side exit back to generic dispatch. *)
let side_exit_program ops ~cut =
  let b = B.create () in
  let base = B.immi b 0x8000 in
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:40 (fun i ->
      List.iteri
        (fun slot (opn, v) ->
          let rv = B.immi b v in
          match opn with
          | 0 -> B.add_to b acc acc rv
          | 1 -> B.bin_to b Mir.Xor acc acc rv
          | 2 -> B.add_to b acc acc i
          | _ -> B.store b Mir.W64 acc (Mir.based_disp base ((slot mod 8) * 8)))
        ops;
      let skip = B.label b in
      B.branchi b Mir.Lt i cut skip;
      B.store b Mir.W64 i (Mir.based_disp base 128);
      B.place b skip);
  B.finish b

let run_fingerprint ?tc image =
  let cpu = Interp.create ?tc image in
  let memio, mem, log = fingerprint_memio () in
  let outcome = Interp.run cpu memio ~fuel:10_000_000 in
  (outcome, Interp.icount cpu, Array.copy (Interp.regs cpu), Buffer.contents log, mem, cpu)

let prop_trace_cache_fingerprint =
  QCheck.Test.make
    ~name:"traced run fingerprints identical to plain dispatch (forced side exits)" ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8) (pair (int_range 0 3) (int_range 0 100)))
        (int_range 1 39))
    (fun (ops, cut) ->
      let image = Codegen.lower ~isa:Node_id.X86 (side_exit_program ops ~cut) in
      let o_plain, ic_plain, regs_plain, log_plain, _, _ = run_fingerprint image in
      let tc = Interp.make_tc ~threshold:2 () in
      let o_tc, ic_tc, regs_tc, log_tc, _, cpu = run_fingerprint ~tc image in
      let counters = Interp.tc_counters tc in
      let c name = match List.assoc_opt name counters with Some v -> v | None -> 0 in
      (* the property must not pass vacuously: the loop head gets hot, so
         traces must have been built, entered, and side-exited *)
      c "tc.built" > 0 && c "tc.entered" > 0 && c "tc.side_exits" > 0
      && Interp.trace_count cpu > 0
      && o_plain = o_tc && ic_plain = ic_tc && regs_plain = regs_tc && log_plain = log_tc)

let hot_loop_program () =
  let b = B.create () in
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:64 (fun i -> B.add_to b acc acc i);
  let out = B.immi b 0x7000 in
  B.store b Mir.W64 acc (Mir.based out);
  B.finish b

let test_tc_invalidate_flushes () =
  let image = Codegen.lower ~isa:Node_id.X86 (hot_loop_program ()) in
  let tc = Interp.make_tc ~threshold:2 () in
  let cpu = Interp.create ~tc image in
  let memio, _ = flat_memio () in
  (match Interp.run cpu memio ~fuel:10_000 with Interp.Halted -> () | _ -> assert false);
  Alcotest.(check bool) "traces built" true (Interp.trace_count cpu > 0);
  let built = Interp.trace_count cpu in
  Interp.invalidate_traces cpu;
  checki "all traces dropped" 0 (Interp.trace_count cpu);
  let flushes =
    match List.assoc_opt "tc.flushes" (Interp.tc_counters tc) with Some v -> v | None -> 0
  in
  checki "every dropped trace counted as a flush" built flushes;
  (* a fresh interpreter on the same tc handle must re-profile and rebuild *)
  let cpu2 = Interp.create ~tc image in
  (match Interp.run cpu2 memio ~fuel:10_000 with Interp.Halted -> () | _ -> assert false);
  Alcotest.(check bool) "traces rebuilt" true (Interp.trace_count cpu2 > 0);
  check64 "rerun result intact" (Int64.of_int (64 * 63 / 2)) (memio.Interp.load 8 0x7000)

let test_tc_migration_invalidates () =
  (* same program as the migration-transform test, but hot enough to
     build traces on the source before the migration point *)
  let b = B.create () in
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:32 (fun i -> B.add_to b acc acc i);
  B.migrate_point b 0;
  B.for_up_const b ~lo:0 ~hi:32 (fun i -> B.add_to b acc acc i);
  let out = B.immi b 0x7000 in
  B.store b Mir.W64 acc (Mir.based out);
  let prog = B.finish b in
  let x86 = Codegen.lower ~isa:Node_id.X86 prog in
  let arm = Codegen.lower ~isa:Node_id.Arm prog in
  let tc = Interp.make_tc ~threshold:2 () in
  let cpu = Interp.create ~tc x86 in
  let memio, _ = flat_memio () in
  (match Interp.run cpu memio ~fuel:1_000_000 with
  | Interp.Migrate 0 -> ()
  | _ -> Alcotest.fail "expected migration point");
  Alcotest.(check bool) "source built traces" true (Interp.trace_count cpu > 0);
  let cpu2 = Migrate_state.transform ~src:cpu ~point:0 ~dst_prog:arm in
  checki "source traces invalidated by migration" 0 (Interp.trace_count cpu);
  Alcotest.(check bool) "destination inherits the tc handle" true (Interp.tc cpu2 <> None);
  (match Interp.run cpu2 memio ~fuel:1_000_000 with
  | Interp.Halted -> ()
  | _ -> Alcotest.fail "expected halt after migration");
  Alcotest.(check bool) "destination rebuilt traces" true (Interp.trace_count cpu2 > 0);
  check64 "sum across migration" (Int64.of_int (2 * 496)) (memio.Interp.load 8 0x7000)

let test_tc_trap_mid_trace_invalidates () =
  (* divisor hits zero at iteration 8 — by then the loop-head trace is
     built (threshold 2), so the Trap is raised from inside a trace replay
     and must leave the cache empty *)
  let b = B.create () in
  let acc = B.immi b 1 in
  B.for_up_const b ~lo:0 ~hi:32 (fun i ->
      let eight = B.immi b 8 in
      let d = B.sub b eight i in
      B.bin_to b Mir.Div acc acc d);
  let prog = B.finish b in
  let image = Codegen.lower ~isa:Node_id.X86 prog in
  let tc = Interp.make_tc ~threshold:2 () in
  let cpu = Interp.create ~tc image in
  let memio, _ = flat_memio () in
  (match Interp.run cpu memio ~fuel:1_000_000 with
  | exception Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected a division trap");
  checki "traces invalidated by the mid-trace trap" 0 (Interp.trace_count cpu)

(* ---------- migration state transform ---------- *)

let test_migrate_transform () =
  (* accumulate, migrate, accumulate more; finishing on either ISA must
     produce the same value *)
  let build () =
    let b = B.create () in
    let acc = B.immi b 0 in
    B.for_up_const b ~lo:0 ~hi:10 (fun i -> B.add_to b acc acc i);
    B.migrate_point b 0;
    B.for_up_const b ~lo:0 ~hi:10 (fun i -> B.add_to b acc acc i);
    let out = B.immi b 0x7000 in
    B.store b Mir.W64 acc (Mir.based out);
    B.finish b
  in
  let prog = build () in
  let x86_image = Codegen.lower ~isa:Node_id.X86 prog in
  let arm_image = Codegen.lower ~isa:Node_id.Arm prog in
  let cpu = Interp.create x86_image in
  let memio, mem = flat_memio () in
  (match Interp.run cpu memio ~fuel:1_000_000 with
  | Interp.Migrate 0 -> ()
  | _ -> Alcotest.fail "expected migration point");
  let cpu2 = Migrate_state.transform ~src:cpu ~point:0 ~dst_prog:arm_image in
  (match Interp.run cpu2 memio ~fuel:1_000_000 with
  | Interp.Halted -> ()
  | _ -> Alcotest.fail "expected halt after migration");
  let got = match Hashtbl.find_opt mem 0x7000 with Some x -> x | None -> -1 in
  checki "sum across migration" 90 got

let test_migrate_pc_table () =
  let b = B.create () in
  B.migrate_point b 5;
  B.migrate_point b 9;
  let prog = B.finish b in
  let image = Codegen.lower ~isa:Node_id.Arm prog in
  Alcotest.(check bool) "points recorded in order" true
    (Machine_code.find_migrate_pc image 5 < Machine_code.find_migrate_pc image 9)

let test_syscall_outcome () =
  let b = B.create () in
  let w = B.immi b 0x100 in
  let e = B.immi b 1 in
  B.futex_wait b ~uaddr:w ~expected:e;
  let prog = B.finish b in
  let image = Codegen.lower ~isa:Node_id.X86 prog in
  let cpu = Interp.create image in
  let memio, _ = flat_memio () in
  (match Interp.run cpu memio ~fuel:100 with
  | Interp.Syscall (Mir.Futex_wait _) -> ()
  | _ -> Alcotest.fail "expected futex syscall outcome");
  check64 "uaddr register readable" 0x100L (Interp.reg cpu w)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_binop_semantics; prop_cross_isa_equivalence; prop_trace_cache_fingerprint ]

let () =
  Alcotest.run "isa"
    [
      ( "builder",
        [
          Alcotest.test_case "appends halt" `Quick test_builder_appends_halt;
          Alcotest.test_case "rejects bad reg" `Quick test_validate_rejects_bad_reg;
          Alcotest.test_case "rejects bad label" `Quick test_validate_rejects_undefined_label;
        ] );
      ( "interp",
        [
          Alcotest.test_case "division traps" `Quick test_division_by_zero_traps;
          Alcotest.test_case "loops + indexed stores" `Quick test_loop_and_indexed_store;
          Alcotest.test_case "for_range" `Quick test_for_range_runtime_bounds;
          Alcotest.test_case "branch conditions" `Quick test_branch_conditions;
          Alcotest.test_case "syscall outcome" `Quick test_syscall_outcome;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arm immediate chunks" `Quick test_arm_immediate_chunks;
          Alcotest.test_case "x86 two-address penalty" `Quick test_x86_two_address_penalty;
          Alcotest.test_case "code bytes" `Quick test_code_bytes_differ;
          Alcotest.test_case "x86 load-op fusion" `Quick test_x86_load_op_fusion;
        ] );
      ( "migration",
        [
          Alcotest.test_case "transform" `Quick test_migrate_transform;
          Alcotest.test_case "pc table" `Quick test_migrate_pc_table;
        ] );
      ( "trace_cache",
        [
          Alcotest.test_case "invalidate flushes + rebuilds" `Quick test_tc_invalidate_flushes;
          Alcotest.test_case "migration invalidates" `Quick test_tc_migration_invalidates;
          Alcotest.test_case "mid-trace trap invalidates" `Quick test_tc_trap_mid_trace_invalidates;
        ] );
      ("properties", qsuite);
    ]
