(* Tests for the open-loop serving subsystem: the Zipfian sampler's
   statistics and golden sequence, SLO evaluation, config validation, and
   same-seed determinism of full runs — alone and composed with a chaos
   kill/restart schedule. *)

module Rng = Stramash_sim.Rng
module Zipf = Stramash_sim.Zipf
module Cycles = Stramash_sim.Cycles
module Histogram = Stramash_sim.Metrics.Histogram
module Machine = Stramash_machine.Machine
module Plan = Stramash_fault_inject.Plan
module Node_id = Stramash_sim.Node_id
module Workload = Stramash_serve.Workload
module Slo = Stramash_serve.Slo
module Serve = Stramash_serve.Serve
module SE = Stramash_harness.Serve_experiments

let checki = Alcotest.(check int)

(* ---------- Zipf sampler ---------- *)

let test_zipf_rejects_bad_args () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "n = 0" (fun () -> Zipf.create ~n:0 ~theta:0.99);
  expect_invalid "n < 0" (fun () -> Zipf.create ~n:(-5) ~theta:0.99);
  expect_invalid "theta = 0" (fun () -> Zipf.create ~n:100 ~theta:0.0);
  expect_invalid "theta < 0" (fun () -> Zipf.create ~n:100 ~theta:(-1.0))

(* The exact draw sequence is part of the serving subsystem's replay
   contract: any change to the sampler (or to Rng.float consumption
   order) shifts every campaign's key stream, so it must be deliberate
   and show up here. *)
let test_zipf_golden_sequence () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create ~seed:42L in
  let got = List.init 12 (fun _ -> Zipf.sample z rng) in
  let expected = [ 3; 312; 130; 80; 759; 1; 203; 2; 82; 9; 224; 26 ] in
  Alcotest.(check (list int)) "pinned sequence" expected got

let test_zipf_degenerate_support () =
  (* n = 1 must terminate and always return rank 0. *)
  let z = Zipf.create ~n:1 ~theta:0.99 in
  let rng = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    checki "only rank" 0 (Zipf.sample z rng)
  done

let prop_zipf_support_bounds =
  QCheck.Test.make ~name:"samples stay in [0, n) for any seed and size" ~count:50
    QCheck.(pair small_int (int_range 1 100_000))
    (fun (seed, n) ->
      let z = Zipf.create ~n ~theta:0.99 in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 200 do
        let k = Zipf.sample z rng in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let prop_zipf_rank_frequency_monotone =
  (* The defining Zipf property, bucketed for statistical robustness: the
     hottest eighth of the support must out-draw the coldest half. At
     theta = 1 over n = 64 the expected mass split is ~0.57 vs ~0.15, so
     4000 draws separate them for any seed. *)
  QCheck.Test.make ~name:"head ranks out-draw tail ranks for any seed" ~count:30
    QCheck.small_int
    (fun seed ->
      let n = 64 in
      let z = Zipf.create ~n ~theta:1.0 in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let head = ref 0 and tail = ref 0 in
      for _ = 1 to 4000 do
        let k = Zipf.sample z rng in
        if k < n / 8 then incr head else if k >= n / 2 then incr tail
      done;
      !head > !tail)

let prop_zipf_seed_deterministic =
  QCheck.Test.make ~name:"same seed replays the same stream" ~count:30
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let draw () =
        let z = Zipf.create ~n ~theta:0.99 in
        let rng = Rng.create ~seed:(Int64.of_int seed) in
        List.init 100 (fun _ -> Zipf.sample z rng)
      in
      draw () = draw ())

(* ---------- workload mix ---------- *)

let test_mix_validation () =
  let ok m = Alcotest.(check bool) "valid" true (Result.is_ok (Workload.validate_mix m)) in
  let bad m = Alcotest.(check bool) "invalid" true (Result.is_error (Workload.validate_mix m)) in
  ok Workload.default_mix;
  ok { Workload.get = 0; set = 1; mset = 0; scan = 0 };
  bad { Workload.get = -1; set = 1; mset = 0; scan = 0 };
  bad { Workload.get = 0; set = 0; mset = 0; scan = 0 }

let test_mix_pick_honours_zero_weights () =
  let mix = { Workload.get = 0; set = 3; mset = 0; scan = 0 } in
  let rng = Rng.create ~seed:11L in
  for _ = 1 to 200 do
    match Workload.pick mix rng with
    | Workload.Set -> ()
    | op -> Alcotest.failf "drew %s from a set-only mix" (Workload.op_name op)
  done

let test_store_spec_rejects_bad_keys () =
  Alcotest.check_raises "keys = 0" (Invalid_argument "Workload.store_spec: keys must be positive")
    (fun () -> ignore (Workload.store_spec ~keys:0))

(* ---------- SLO evaluation ---------- *)

let test_slo_validate () =
  let ok = Result.is_ok (Slo.validate Slo.default) in
  Alcotest.(check bool) "default valid" true ok;
  let bad t = Alcotest.(check bool) "rejected" true (Result.is_error (Slo.validate t)) in
  bad { Slo.p50_us = 0.0; p95_us = 1.0; p99_us = 2.0 };
  bad { Slo.p50_us = -1.0; p95_us = 1.0; p99_us = 2.0 };
  (* non-monotone: p95 limit below p50 limit *)
  bad { Slo.p50_us = 100.0; p95_us = 50.0; p99_us = 200.0 }

let test_slo_empty_histogram_fails () =
  (* A run that recorded nothing must not pass vacuously. *)
  let h = Histogram.create ~buckets:16 ~lo:0.0 ~hi:100.0 in
  let r = Slo.evaluate Slo.default h in
  checki "no samples" 0 r.Slo.samples;
  Alcotest.(check bool) "fails" false r.Slo.pass

let test_slo_evaluate_gates () =
  let h = Histogram.create ~buckets:2048 ~lo:0.0 ~hi:(float_of_int (Cycles.of_us 2000.0)) in
  (* 97 samples at ~10us, three at ~500us: p50/p95 comfortable, p99 hot. *)
  for _ = 1 to 97 do
    Histogram.record h (float_of_int (Cycles.of_us 10.0))
  done;
  for _ = 1 to 3 do
    Histogram.record h (float_of_int (Cycles.of_us 500.0))
  done;
  let pass = Slo.evaluate { Slo.p50_us = 40.0; p95_us = 120.0; p99_us = 600.0 } h in
  Alcotest.(check bool) "passes generous gates" true pass.Slo.pass;
  let fail = Slo.evaluate { Slo.p50_us = 40.0; p95_us = 120.0; p99_us = 250.0 } h in
  Alcotest.(check bool) "p99 gate trips" false fail.Slo.pass;
  (match List.rev fail.Slo.checks with
  | p99 :: _ ->
      Alcotest.(check string) "tripped metric" "p99" p99.Slo.metric;
      Alcotest.(check bool) "marked not ok" false p99.Slo.ok
  | [] -> Alcotest.fail "no checks")

(* ---------- Serve.validate ---------- *)

let test_serve_validate_rejections () =
  let bad name cfg =
    match Serve.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" name
  in
  Alcotest.(check bool) "default valid" true (Result.is_ok (Serve.validate Serve.default));
  bad "vanilla" { Serve.default with Serve.os = Machine.Vanilla };
  bad "zero rate" { Serve.default with Serve.rate = 0.0 };
  bad "negative keys" { Serve.default with Serve.keys = -1 };
  bad "zero requests" { Serve.default with Serve.requests = 0 };
  bad "zero payload" { Serve.default with Serve.payload = 0 };
  bad "zero theta" { Serve.default with Serve.theta = 0.0 };
  bad "placement under popcorn"
    { Serve.default with Serve.os = Machine.Popcorn_shm; placement = true };
  let kill = { Plan.node = Node_id.Arm; kill_at = 1000; restart_after = None } in
  bad "restart-less kill"
    { Serve.default with Serve.inject = Some { Plan.default with node_events = [ kill ] } };
  let kill = { kill with Plan.restart_after = Some 500 } in
  bad "chaos under popcorn"
    {
      Serve.default with
      Serve.os = Machine.Popcorn_shm;
      inject = Some { Plan.default with node_events = [ kill ] };
    };
  Alcotest.(check bool) "restartful kill under stramash valid" true
    (Result.is_ok
       (Serve.validate
          { Serve.default with Serve.inject = Some { Plan.default with node_events = [ kill ] } }))

let test_serve_run_rejects_invalid () =
  match Serve.run { Serve.default with Serve.rate = -1.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rate accepted"

(* ---------- full-run determinism ---------- *)

(* Small but real: 4096 keys, 400 requests over every kernel path. The
   rendered outcome (latency tables, SLO lines, counters) is the replay
   contract, so compare that, not just a summary statistic. *)
let small cfg = { cfg with Serve.keys = 4096; requests = 400; rate = 50_000.0 }

let render outcome =
  let counters =
    String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) outcome.Serve.o_counters)
  in
  Format.asprintf "%a|%s" Serve.pp_outcome outcome counters

let test_serve_same_seed_identical () =
  let cfg = small Serve.default in
  let a = render (Serve.run cfg) in
  let b = render (Serve.run cfg) in
  Alcotest.(check string) "byte-identical" a b

let test_serve_seed_matters () =
  let cfg = small Serve.default in
  let a = render (Serve.run cfg) in
  let b = render (Serve.run { cfg with Serve.seed = 99L }) in
  Alcotest.(check bool) "different seed, different run" true (a <> b)

let test_serve_chaos_composed_identical () =
  let base = small Serve.default in
  let span = 400 * Cycles.of_us 1.0 * 10 in
  let cfg = { base with Serve.inject = Some (SE.chaos_inject ~seed:5L ~span) } in
  let oa = Serve.run cfg in
  let ob = Serve.run cfg in
  Alcotest.(check string) "byte-identical under chaos" (render oa) (render ob);
  (* the downtime windows actually bit: admission stalled at least once *)
  Alcotest.(check bool) "stall cycles recorded" true
    (List.assoc "serve.downtime_stall_cycles" oa.Serve.o_counters > 0)

let test_serve_popcorn_runs () =
  let cfg = small { Serve.default with Serve.os = Machine.Popcorn_shm } in
  let o = Serve.run cfg in
  checki "all requests measured" 400 (Histogram.count o.Serve.o_all);
  Alcotest.(check string) "personality" "popcorn-shm" o.Serve.o_os

let test_serve_counters_cover_ops () =
  let o = Serve.run (small Serve.default) in
  let total =
    List.fold_left
      (fun acc op ->
        acc + (List.assoc ("serve.op." ^ Workload.op_name op) o.Serve.o_counters))
      0 Workload.all_ops
  in
  checki "per-op counters sum to requests" 400 total;
  checki "completed" 400 (List.assoc "serve.completed" o.Serve.o_counters)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_zipf_support_bounds; prop_zipf_rank_frequency_monotone; prop_zipf_seed_deterministic ]

let () =
  Alcotest.run "serve"
    [
      ( "zipf",
        [
          Alcotest.test_case "rejects bad args" `Quick test_zipf_rejects_bad_args;
          Alcotest.test_case "golden sequence" `Quick test_zipf_golden_sequence;
          Alcotest.test_case "degenerate support" `Quick test_zipf_degenerate_support;
        ]
        @ qsuite );
      ( "workload",
        [
          Alcotest.test_case "mix validation" `Quick test_mix_validation;
          Alcotest.test_case "zero weights" `Quick test_mix_pick_honours_zero_weights;
          Alcotest.test_case "store spec guards" `Quick test_store_spec_rejects_bad_keys;
        ] );
      ( "slo",
        [
          Alcotest.test_case "validate" `Quick test_slo_validate;
          Alcotest.test_case "empty histogram fails" `Quick test_slo_empty_histogram_fails;
          Alcotest.test_case "gates" `Quick test_slo_evaluate_gates;
        ] );
      ( "serve",
        [
          Alcotest.test_case "validate rejections" `Quick test_serve_validate_rejections;
          Alcotest.test_case "run rejects invalid" `Quick test_serve_run_rejects_invalid;
          Alcotest.test_case "same seed identical" `Quick test_serve_same_seed_identical;
          Alcotest.test_case "seed matters" `Quick test_serve_seed_matters;
          Alcotest.test_case "chaos-composed identical" `Slow test_serve_chaos_composed_identical;
          Alcotest.test_case "popcorn personality" `Quick test_serve_popcorn_runs;
          Alcotest.test_case "op counters" `Quick test_serve_counters_cover_ops;
        ] );
    ]
