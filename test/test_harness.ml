(* Tests for the harness itself: report rendering, the experiment
   registry, and the new mechanisms (polling notification, data packing). *)

module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Tlb = Stramash_kernel.Tlb
module Msg_layer = Stramash_popcorn.Msg_layer
module Data_packing = Stramash_core.Data_packing
module H = Stramash_harness

let checki = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ---------- Report ---------- *)

let test_report_renders_rows () =
  let r = H.Report.create ~title:"T" ~note:"n" ~columns:[ "a"; "bb" ] in
  H.Report.add_row r [ "1"; "2" ];
  H.Report.add_row r [ "333"; "4" ];
  let s = Format.asprintf "%a" H.Report.print r in
  Alcotest.(check bool) "title" true (contains s "### T");
  Alcotest.(check bool) "columns" true (contains s "bb");
  Alcotest.(check bool) "cells padded" true (contains s "333 | 4");
  checki "rows retrievable" 2 (List.length (H.Report.rows r))

let test_report_cells () =
  Alcotest.(check string) "pct" "12.34%" (H.Report.cell_pct 0.1234);
  Alcotest.(check string) "speedup" "2.10x" (H.Report.cell_x 2.1);
  Alcotest.(check string) "bar full" "####" (H.Report.bar 2.0 ~max:1.0 ~width:4);
  Alcotest.(check string) "bar half" "##.." (H.Report.bar 0.5 ~max:1.0 ~width:4);
  Alcotest.(check string) "bar zero-max" "...." (H.Report.bar 1.0 ~max:0.0 ~width:4)

(* ---------- Experiments registry ---------- *)

let test_registry_complete () =
  (* every table and figure of the paper's evaluation must be present *)
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry has " ^ id) true (H.Experiments.find id <> None))
    [
      "fig5-6"; "fig7"; "fig8"; "table2"; "fig9"; "table3"; "fig10"; "fig11"; "fig12"; "fig13";
      "table4"; "fig14";
    ];
  Alcotest.(check bool) "unknown id rejected" true (H.Experiments.find "fig99" = None);
  Alcotest.(check bool) "ids unique" true
    (let ids = H.Experiments.ids () in
     List.length ids = List.length (List.sort_uniq compare ids))

let test_cheap_experiments_run () =
  (* smoke-run the inexpensive experiments end to end *)
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun id ->
      match H.Experiments.find id with
      | Some e -> e.H.Experiments.run fmt
      | None -> Alcotest.fail ("missing " ^ id))
    [ "table2"; "fig5-6"; "table4"; "ablation-packing" ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "table2 header" true (contains s "Table 2");
  Alcotest.(check bool) "table4 rows" true (contains s "2^20");
  Alcotest.(check bool) "packing result" true (contains s "objects packed")

(* ---------- polling notification ---------- *)

let make_env () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:Node_id.X86 ~phys; Kernel.boot ~node:Node_id.Arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = Layout.Shared;
      liveness = Stramash_sim.Liveness.create ();
  }

let test_polling_cheaper_for_requester () =
  let latency notify =
    let env = make_env () in
    let msg = Msg_layer.create Msg_layer.Shm env ~notify () in
    Msg_layer.rpc msg ~src:Node_id.X86 ~label:"x" ~req_bytes:64 ~resp_bytes:64 ~handler:ignore;
    Meter.get (Env.meter env Node_id.X86)
  in
  Alcotest.(check bool) "polling round trip beats two IPIs" true
    (latency Msg_layer.Polling < latency Msg_layer.Ipi)

let test_polling_charges_receiver_busy_work () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env ~notify:Msg_layer.Polling () in
  let before = Meter.get (Env.meter env Node_id.Arm) in
  Msg_layer.rpc msg ~src:Node_id.X86 ~label:"x" ~req_bytes:64 ~resp_bytes:64 ~handler:ignore;
  Alcotest.(check bool) "receiver burns poll cycles" true
    (Meter.get (Env.meter env Node_id.Arm) > before)

(* ---------- data packing ---------- *)

let test_data_packing_moves_content () =
  let env = make_env () in
  let kernel = Env.kernel env Node_id.X86 in
  let packer = Data_packing.create env ~owner:Node_id.X86 ~window_bytes:(4 * Addr.page_size) in
  let src = Kheap.alloc_line kernel.Kernel.kheap in
  Phys_mem.write_u64 env.Env.phys src 0xFEEDL;
  (match Data_packing.pack packer ~src ~bytes:64 with
  | Ok packed ->
      Alcotest.(check int64) "content moved" 0xFEEDL (Phys_mem.read_u64 env.Env.phys packed);
      Alcotest.(check bool) "inside window" true
        (Layout.region_contains (Data_packing.window packer) packed)
  | Error `Window_full -> Alcotest.fail "window full too early");
  checki "one object" 1 (Data_packing.objects_packed packer)

let test_data_packing_window_full () =
  let env = make_env () in
  let packer = Data_packing.create env ~owner:Node_id.X86 ~window_bytes:Addr.page_size in
  let kernel = Env.kernel env Node_id.X86 in
  let rec fill n =
    let src = Kheap.alloc_line kernel.Kernel.kheap in
    match Data_packing.pack packer ~src ~bytes:64 with
    | Ok _ -> fill (n + 1)
    | Error `Window_full -> n
  in
  checki "page fits 64 lines" 64 (fill 0)

let test_data_packing_enforcement () =
  let env = make_env () in
  let packer = Data_packing.create env ~owner:Node_id.X86 ~window_bytes:Addr.page_size in
  let inside = (Data_packing.window packer).Layout.lo in
  let outside = inside + Addr.gib 1 in
  Alcotest.(check bool) "owner always allowed" true
    (Data_packing.check_remote_access packer ~actor:Node_id.X86 ~paddr:outside = Ok ());
  Alcotest.(check bool) "remote window access ok" true
    (Data_packing.check_remote_access packer ~actor:Node_id.Arm ~paddr:inside = Ok ());
  Alcotest.(check bool) "remote private access denied" true
    (Data_packing.check_remote_access packer ~actor:Node_id.Arm
       ~paddr:(Layout.x86_private.Layout.hi - Addr.page_size)
    = Error `Protection_violation);
  Alcotest.(check bool) "remote access to arm's own memory is not x86's concern" true
    (Data_packing.check_remote_access packer ~actor:Node_id.Arm ~paddr:(Addr.gib 2) = Ok ());
  checki "violation recorded" 1 (Data_packing.violations packer)

(* ---------- metrics snapshot ---------- *)

let test_snapshot_round_trip () =
  let module Snapshot = Stramash_obs.Snapshot in
  let module Json = Stramash_obs.Json in
  let reg = Stramash_sim.Metrics.registry () in
  Stramash_sim.Metrics.add reg "msg.sends" 7;
  Stramash_sim.Metrics.incr reg "ipi.delivered";
  let snap = Snapshot.create () in
  Snapshot.add_counters snap "node_cycles" [ ("x86", 123); ("arm", 456) ];
  Snapshot.add_registry snap "faults" reg;
  let s = Snapshot.to_string snap in
  match Json.parse s with
  | Error e -> Alcotest.fail ("snapshot did not render valid JSON: " ^ e)
  | Ok j -> (
      match Snapshot.of_json j with
      | Error e -> Alcotest.fail ("round trip failed: " ^ e)
      | Ok back ->
          checki "x86 cycles survive" 123 (List.assoc "x86" (Snapshot.counters back "node_cycles"));
          checki "arm cycles survive" 456 (List.assoc "arm" (Snapshot.counters back "node_cycles"));
          checki "registry counters survive" 7
            (List.assoc "msg.sends" (Snapshot.counters back "faults"));
          Alcotest.(check bool) "section order preserved" true
            (List.map fst (Snapshot.sections back) = [ "node_cycles"; "faults" ]);
          Alcotest.(check string) "re-render identical" s (Snapshot.to_string back))

let test_snapshot_carries_trace_attribution () =
  let module Trace = Stramash_obs.Trace in
  let module Snapshot = Stramash_obs.Snapshot in
  let module Json = Stramash_obs.Json in
  let t = Trace.create () in
  Trace.install t;
  let sp = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"msg" ~op:"rpc" () in
  Trace.close ~at:40 sp;
  Trace.uninstall ();
  let snap = Snapshot.create () in
  Snapshot.add_trace snap t;
  match Json.parse (Snapshot.to_string snap) with
  | Error e -> Alcotest.fail ("invalid JSON: " ^ e)
  | Ok j ->
      let rows =
        Option.bind (Json.member "trace" j) (Json.member "attribution")
        |> Fun.flip Option.bind Json.get_list
      in
      (match rows with
      | Some [ row ] ->
          Alcotest.(check (option string))
            "subsys" (Some "msg")
            (Option.bind (Json.member "subsys" row) Json.get_string);
          Alcotest.(check (option int))
            "total" (Some 40)
            (Option.bind (Json.member "total_cycles" row) Json.get_int)
      | Some rows -> checki "one attribution row" 1 (List.length rows)
      | None -> Alcotest.fail "trace.attribution missing")

let () =
  Alcotest.run "harness"
    [
      ( "report",
        [
          Alcotest.test_case "renders" `Quick test_report_renders_rows;
          Alcotest.test_case "cells" `Quick test_report_cells;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "cheap experiments run" `Quick test_cheap_experiments_run;
        ] );
      ( "polling",
        [
          Alcotest.test_case "requester latency" `Quick test_polling_cheaper_for_requester;
          Alcotest.test_case "receiver busy work" `Quick test_polling_charges_receiver_busy_work;
        ] );
      ( "data_packing",
        [
          Alcotest.test_case "moves content" `Quick test_data_packing_moves_content;
          Alcotest.test_case "window full" `Quick test_data_packing_window_full;
          Alcotest.test_case "enforcement" `Quick test_data_packing_enforcement;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round trip" `Quick test_snapshot_round_trip;
          Alcotest.test_case "trace attribution" `Quick test_snapshot_carries_trace_attribution;
        ] );
    ]
