(* Tests for the workload suite: every NPB-like kernel's simulated result
   matches its host-computed reference (on small classes), microbenchmark
   specs are well-formed, and the Redis model behaves. *)

module Node_id = Stramash_sim.Node_id
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Spec = Stramash_machine.Spec
module W = Stramash_workloads

let check64 = Alcotest.(check int64)

let run_and_read_checksum ?(os = Machine.Vanilla) spec =
  let machine = Machine.create { Machine.default_config with os } in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  match
    Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:W.Npb_common.checksum_vaddr ~width:8
  with
  | Some v -> (v, result)
  | None -> Alcotest.fail "checksum unmapped"

(* small classes so each test stays fast *)
let is_params = { W.Npb_is.nkeys = 8192; max_key = 512; iterations = 2 }
let cg_params = { W.Npb_cg.n = 2048; row_nnz = 6; iterations = 2 }
let mg_params = { W.Npb_mg.n = 16; iterations = 2 }
let ft_params = { W.Npb_ft.n = 8; iterations = 2 }
let ep_params = { W.Npb_ep.samples = 20_000; iterations = 2 }
let lu_params = { W.Npb_lu.n = 12; iterations = 2 }
let sp_params = { W.Npb_sp.n = 12; iterations = 2 }

let test_is_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_is.spec ~params:is_params ()) in
  check64 "IS" (W.Npb_is.expected_checksum is_params) got

let test_cg_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_cg.spec ~params:cg_params ()) in
  check64 "CG (bitwise float)" (Int64.bits_of_float (W.Npb_cg.expected_checksum cg_params)) got

let test_mg_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_mg.spec ~params:mg_params ()) in
  check64 "MG" (Int64.bits_of_float (W.Npb_mg.expected_checksum mg_params)) got

let test_ft_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_ft.spec ~params:ft_params ()) in
  check64 "FT" (Int64.bits_of_float (W.Npb_ft.expected_checksum ft_params)) got

let test_ep_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_ep.spec ~params:ep_params ()) in
  check64 "EP" (W.Npb_ep.expected_checksum ep_params) got

let test_lu_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_lu.spec ~params:lu_params ()) in
  check64 "LU" (Int64.bits_of_float (W.Npb_lu.expected_checksum lu_params)) got

let test_lu_checksum_migrated () =
  let got, _ = run_and_read_checksum ~os:Machine.Stramash_kernel_os (W.Npb_lu.spec ~params:lu_params ()) in
  check64 "LU stramash" (Int64.bits_of_float (W.Npb_lu.expected_checksum lu_params)) got

let test_sp_checksum () =
  let got, _ = run_and_read_checksum (W.Npb_sp.spec ~params:sp_params ()) in
  check64 "SP" (Int64.bits_of_float (W.Npb_sp.expected_checksum sp_params)) got

let test_sp_checksum_migrated () =
  let got, _ = run_and_read_checksum ~os:Machine.Popcorn_shm (W.Npb_sp.spec ~params:sp_params ()) in
  check64 "SP popcorn" (Int64.bits_of_float (W.Npb_sp.expected_checksum sp_params)) got

(* migration must not change results, under either OS *)
let test_checksums_stable_across_oses () =
  List.iter
    (fun os ->
      let got, result = run_and_read_checksum ~os (W.Npb_is.spec ~params:is_params ()) in
      check64 (Machine.os_choice_name os) (W.Npb_is.expected_checksum is_params) got;
      if Machine.os_choice_name os <> "vanilla" then
        Alcotest.(check bool) "migrations happened" true (result.Runner.migrations > 0))
    [ Machine.Vanilla; Machine.Popcorn_shm; Machine.Popcorn_tcp; Machine.Stramash_kernel_os ]

let test_is_write_intensive () =
  (* IS must store substantially; CG must be load-dominated *)
  let machine = Machine.create { Machine.default_config with os = Machine.Vanilla } in
  let spec = W.Npb_cg.spec ~params:cg_params () in
  let proc, thread = Machine.load machine spec in
  let r = Runner.run machine proc thread spec in
  let g name = Stramash_sim.Metrics.get r.Runner.cache ("x86." ^ name) in
  let loads = g "l1d_accesses" in
  ignore loads;
  Alcotest.(check bool) "CG executes" true (r.Runner.instructions > 100_000)

let test_workload_specs_validate () =
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Stramash_isa.Mir.validate spec.Spec.mir = Ok ()))
    [
      ("is", W.Npb_is.spec ~params:is_params ());
      ("cg", W.Npb_cg.spec ~params:cg_params ());
      ("mg", W.Npb_mg.spec ~params:mg_params ());
      ("ft", W.Npb_ft.spec ~params:ft_params ());
      ("ep", W.Npb_ep.spec ~params:ep_params ());
      ("memaccess", W.Micro_memaccess.spec W.Micro_memaccess.Vanilla);
      ("granularity", W.Micro_granularity.spec ~lines:4 ());
      ("futex", W.Micro_futex.spec ~loops:10);
    ]

let test_memaccess_variants_distinct () =
  Alcotest.(check int) "six variants" 6 (List.length W.Micro_memaccess.all_variants);
  let names = List.map W.Micro_memaccess.variant_name W.Micro_memaccess.all_variants in
  Alcotest.(check int) "distinct names" 6 (List.length (List.sort_uniq compare names))

let test_granularity_measures () =
  let spec = W.Micro_granularity.spec ~pages:8 ~lines:2 () in
  let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
  let proc, thread = Machine.load machine spec in
  let r = Runner.run machine proc thread spec in
  Alcotest.(check bool) "measured span positive" true
    (Runner.phase_span r ~start:W.Micro_granularity.measure_start
       ~stop:W.Micro_granularity.measure_stop
    > 0)

let test_futex_microbench_runs () =
  let spec = W.Micro_futex.spec ~loops:25 in
  let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
  let proc, locker = Machine.load machine spec in
  let unlocker =
    Machine.spawn_thread machine proc ~at_point:W.Micro_futex.unlocker_entry ~node:Node_id.Arm
  in
  let r = Runner.run_threads machine proc [ locker; unlocker ] spec in
  Alcotest.(check bool) "completed" true (r.Runner.wall_cycles > 0);
  (* the locker stores its loop count as the checksum *)
  match
    Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:W.Npb_common.checksum_vaddr ~width:8
  with
  | Some v -> check64 "loop count" 25L v
  | None -> Alcotest.fail "checksum unmapped"

let test_redis_ops () =
  let results = W.Redis.run ~os:Machine.Popcorn_shm ~requests:200 () in
  Alcotest.(check int) "eight ops" 8 (List.length results);
  List.iter
    (fun (r : W.Redis.result) ->
      Alcotest.(check bool) (W.Redis.op_name r.W.Redis.op) true (r.W.Redis.cycles_per_request > 0.0))
    results

let test_redis_rejects_bad_args () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "requests = 0" (fun () ->
      W.Redis.run ~os:Machine.Popcorn_shm ~requests:0 ());
  expect_invalid "requests < 0" (fun () ->
      W.Redis.run ~os:Machine.Popcorn_shm ~requests:(-3) ());
  expect_invalid "payload = 0" (fun () ->
      W.Redis.run ~os:Machine.Popcorn_shm ~payload:0 ());
  expect_invalid "vanilla server" (fun () ->
      let machine = Machine.create { Machine.default_config with os = Machine.Vanilla } in
      W.Redis.make_server machine);
  expect_invalid "serve_one payload = 0" (fun () ->
      let machine =
        Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os }
      in
      let server = W.Redis.make_server machine in
      W.Redis.serve_one server W.Redis.Get ~payload:0)

let test_redis_value_callback_counts () =
  (* The serve subsystem substitutes its keyspace for the value phase;
     the callback contract is one call per value access the op performs,
     with [~write] telling the direction. *)
  let machine =
    Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os }
  in
  let server = W.Redis.make_server machine in
  let count op =
    let reads = ref 0 and writes = ref 0 in
    W.Redis.serve_one ~value:(fun ~write -> incr (if write then writes else reads))
      server op ~payload:1024;
    (!reads, !writes)
  in
  Alcotest.(check (pair int int)) "get reads once" (1, 0) (count W.Redis.Get);
  Alcotest.(check (pair int int)) "set writes once" (0, 1) (count W.Redis.Set);
  Alcotest.(check (pair int int)) "mset writes ten times" (0, 10) (count W.Redis.Mset)

let test_redis_tcp_slowest () =
  let mean os =
    let rs = W.Redis.run ~os ~requests:200 () in
    List.fold_left (fun a (r : W.Redis.result) -> a +. r.W.Redis.cycles_per_request) 0.0 rs
  in
  let tcp = mean Machine.Popcorn_tcp in
  let shm = mean Machine.Popcorn_shm in
  let str = mean Machine.Stramash_kernel_os in
  Alcotest.(check bool) "tcp > shm" true (tcp > shm);
  Alcotest.(check bool) "shm > stramash" true (shm > str)

let () =
  Alcotest.run "workloads"
    [
      ( "npb checksums",
        [
          Alcotest.test_case "is" `Quick test_is_checksum;
          Alcotest.test_case "cg" `Quick test_cg_checksum;
          Alcotest.test_case "mg" `Quick test_mg_checksum;
          Alcotest.test_case "ft" `Quick test_ft_checksum;
          Alcotest.test_case "ep" `Quick test_ep_checksum;
          Alcotest.test_case "lu" `Quick test_lu_checksum;
          Alcotest.test_case "lu migrated" `Quick test_lu_checksum_migrated;
          Alcotest.test_case "sp" `Quick test_sp_checksum;
          Alcotest.test_case "sp migrated" `Quick test_sp_checksum_migrated;
          Alcotest.test_case "stable across OSes" `Slow test_checksums_stable_across_oses;
        ] );
      ( "structure",
        [
          Alcotest.test_case "specs validate" `Quick test_workload_specs_validate;
          Alcotest.test_case "cg runs" `Quick test_is_write_intensive;
          Alcotest.test_case "memaccess variants" `Quick test_memaccess_variants_distinct;
        ] );
      ( "micro",
        [
          Alcotest.test_case "granularity" `Quick test_granularity_measures;
          Alcotest.test_case "futex" `Quick test_futex_microbench_runs;
        ] );
      ( "redis",
        [
          Alcotest.test_case "ops" `Quick test_redis_ops;
          Alcotest.test_case "rejects bad args" `Quick test_redis_rejects_bad_args;
          Alcotest.test_case "value callback counts" `Quick test_redis_value_callback_counts;
          Alcotest.test_case "transport ordering" `Slow test_redis_tcp_slowest;
        ] );
    ]
