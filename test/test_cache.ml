(* Tests for the cache simulator: hierarchy behaviour, MESI coherence with
   CXL overheads, locality classification, write-backs, and agreement with
   the Ruby-style reference model. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Latency = Stramash_mem.Latency
module Config = Stramash_cache.Config
module Level = Stramash_cache.Level
module Mesi = Stramash_cache.Mesi
module Directory = Stramash_cache.Directory
module Cxl = Stramash_cache.Cxl
module Cache_sim = Stramash_cache.Cache_sim
module Ruby_ref = Stramash_cache.Ruby_ref
module Trace = Stramash_cache.Trace

let checki = Alcotest.(check int)
let x86 = Node_id.X86
let arm = Node_id.Arm

let fresh ?(hw = Layout.Shared) () = Cache_sim.create (Config.default hw)
let xg = Latency.of_core Latency.Xeon_gold

(* x86-private addresses are local to x86, remote to arm, in Shared mode *)
let a_local = 4096 * 17

let access c node kind paddr = Cache_sim.access c ~node kind ~paddr

(* ---------- Level ---------- *)

let test_level_lru () =
  let g = { Config.size = 4 * 64; ways = 4 } in
  (* one set, four ways *)
  let l = Level.create g in
  checki "capacity" 4 (Level.capacity_lines l);
  for i = 0 to 3 do
    Alcotest.(check (option int)) "no eviction while filling" None (Level.insert l ~line:i)
  done;
  (* touch 0 so 1 becomes LRU *)
  Alcotest.(check bool) "hit" true (Level.probe l ~line:0);
  Alcotest.(check (option int)) "LRU evicted" (Some 1) (Level.insert l ~line:99);
  Alcotest.(check bool) "0 still present" true (Level.contains l ~line:0);
  Alcotest.(check bool) "1 gone" false (Level.contains l ~line:1)

let test_level_invalidate () =
  let l = Level.create { Config.size = 8 * 64; ways = 2 } in
  ignore (Level.insert l ~line:5);
  Alcotest.(check bool) "invalidate present" true (Level.invalidate l ~line:5);
  Alcotest.(check bool) "second invalidate is a no-op" false (Level.invalidate l ~line:5)

(* ---------- Mesi / Directory ---------- *)

let test_mesi_transitions () =
  Alcotest.(check bool) "read vs M snoops data" true (Mesi.on_read ~other:Mesi.M = (Mesi.S, Mesi.S, Mesi.Snoop_data));
  Alcotest.(check bool) "read vs I takes E" true (Mesi.on_read ~other:Mesi.I = (Mesi.E, Mesi.I, Mesi.No_snoop));
  Alcotest.(check bool) "write vs S invalidates" true
    (Mesi.on_write ~other:Mesi.S = (Mesi.M, Mesi.I, Mesi.Snoop_invalidate));
  Alcotest.(check bool) "upgrade vs I silent" true (Mesi.on_upgrade ~other:Mesi.I = (Mesi.M, Mesi.I, Mesi.No_snoop))

let test_directory () =
  let d = Directory.create () in
  Alcotest.(check bool) "initially I" true (Directory.get d x86 ~line:7 = Mesi.I);
  Directory.set d x86 ~line:7 Mesi.M;
  Directory.set d arm ~line:7 Mesi.S;
  Alcotest.(check bool) "x86 M" true (Directory.get d x86 ~line:7 = Mesi.M);
  Alcotest.(check bool) "arm S" true (Directory.get d arm ~line:7 = Mesi.S);
  Directory.set d x86 ~line:7 Mesi.I;
  Alcotest.(check bool) "x86 back to I" true (not (Directory.holds d x86 ~line:7));
  Alcotest.(check bool) "arm unaffected" true (Directory.holds d arm ~line:7)

(* ---------- Cache_sim basics ---------- *)

let test_miss_then_hit () =
  let c = fresh () in
  let first = access c x86 Cache_sim.Load a_local in
  Alcotest.(check bool) "first access pays memory latency" true (first >= xg.Latency.mem);
  let second = access c x86 Cache_sim.Load a_local in
  checki "second is an L1 hit" xg.Latency.l1 second;
  checki "one local mem fill" 1 (Cache_sim.stat c x86 "local_mem_hits");
  checki "two l1d accesses" 2 (Cache_sim.stat c x86 "l1d_accesses");
  checki "one l1d hit" 1 (Cache_sim.stat c x86 "l1d_hits")

let test_remote_memory_latency () =
  let c = fresh () in
  (* x86 private memory is remote for arm in the Shared model. *)
  let lat = access c arm Cache_sim.Load a_local in
  let tx2 = Latency.of_core Latency.Thunderx2 in
  Alcotest.(check bool) "arm pays remote latency" true (lat >= tx2.Latency.remote_mem);
  checki "remote hit counted" 1 (Cache_sim.stat c arm "remote_mem_hits")

let test_ring_classified_as_remote_shared () =
  let c = fresh () in
  let ring_addr = Layout.message_ring.Layout.lo + 128 in
  ignore (access c x86 Cache_sim.Load ring_addr);
  checki "ring access classified" 1 (Cache_sim.stat c x86 "remote_shared_mem_hits")

let test_write_invalidates_other_node () =
  let c = fresh () in
  ignore (access c x86 Cache_sim.Load a_local);
  ignore (access c arm Cache_sim.Load a_local);
  (* both nodes now hold the line Shared; a store must invalidate the peer *)
  let store_cost = access c x86 Cache_sim.Store a_local in
  Alcotest.(check bool) "upgrade pays snoop-invalidate" true
    (store_cost >= Cxl.default.Cxl.snoop_invalidate);
  checki "snoop invalidation counted" 1 (Cache_sim.stat c x86 "snoop_invalidates");
  (* the peer must re-miss *)
  let arm_again = access c arm Cache_sim.Load a_local in
  Alcotest.(check bool) "peer misses after invalidation" true (arm_again > xg.Latency.l1)

let test_read_of_modified_snoops_data () =
  let c = fresh () in
  ignore (access c x86 Cache_sim.Store a_local);
  ignore (access c arm Cache_sim.Load a_local);
  checki "snoop data counted at reader" 1 (Cache_sim.stat c arm "snoop_data")

let test_writeback_counted () =
  let c = fresh () in
  let cfg = Cache_sim.config c in
  let l3_lines = cfg.Config.l3.Config.size / 64 in
  (* dirty many lines, then stream far past the L3 capacity *)
  for i = 0 to 63 do
    ignore (access c x86 Cache_sim.Store (a_local + (i * 64)))
  done;
  for i = 0 to (4 * l3_lines) - 1 do
    ignore (access c x86 Cache_sim.Load (Addr.mib 64 + (i * 64)))
  done;
  Alcotest.(check bool) "dirty evictions produce writebacks" true
    (Cache_sim.stat c x86 "writebacks" > 0)

let test_writeback_hook_fires () =
  let c = fresh () in
  let fired = ref 0 in
  Cache_sim.set_writeback_hook c (Some (fun _node ~line:_ -> incr fired));
  let cfg = Cache_sim.config c in
  let l3_lines = cfg.Config.l3.Config.size / 64 in
  for i = 0 to 63 do
    ignore (access c x86 Cache_sim.Store (a_local + (i * 64)))
  done;
  for i = 0 to (4 * l3_lines) - 1 do
    ignore (access c x86 Cache_sim.Load (Addr.mib 64 + (i * 64)))
  done;
  Alcotest.(check bool) "hook fired" true (!fired > 0);
  checki "hook count matches stat" (Cache_sim.stat c x86 "writebacks") !fired

let test_fully_shared_single_l3 () =
  let c = fresh ~hw:Layout.Fully_shared () in
  ignore (access c x86 Cache_sim.Load a_local);
  (* same line from the other node: shared L3 should hit *)
  let lat = access c arm Cache_sim.Load a_local in
  let tx2 = Latency.of_core Latency.Thunderx2 in
  Alcotest.(check bool) "arm hits the shared L3" true (lat < tx2.Latency.mem);
  checki "no remote hits in fully shared" 0 (Cache_sim.stat c arm "remote_mem_hits")

let test_atomic_costs_more () =
  let c = fresh () in
  ignore (access c x86 Cache_sim.Store a_local);
  let plain = access c x86 Cache_sim.Store a_local in
  let atomic = Cache_sim.atomic_rmw c ~node:x86 ~paddr:a_local in
  Alcotest.(check bool) "atomic > plain store" true (atomic > plain)

let test_access_bytes_spans_lines () =
  let c = fresh () in
  ignore (Cache_sim.access_bytes c ~node:x86 Cache_sim.Load ~paddr:(a_local + 32) ~len:64);
  checki "two lines touched" 2 (Cache_sim.stat c x86 "l1d_accesses")

let test_ifetch_uses_l1i () =
  let c = fresh () in
  ignore (access c x86 Cache_sim.Ifetch a_local);
  checki "l1i access" 1 (Cache_sim.stat c x86 "l1i_accesses");
  checki "no l1d access" 0 (Cache_sim.stat c x86 "l1d_accesses")

(* ---------- property: plugin vs Ruby agreement on random traces ---------- *)

let prop_ruby_agreement =
  QCheck.Test.make ~name:"plugin and ruby hit rates agree within 8% on random traces" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int (seed + 1)) in
      let c = fresh () in
      let trace = Trace.create () in
      Trace.attach trace c;
      (* clustered random accesses: 64 hot pages + uniform noise *)
      for _ = 1 to 30_000 do
        let node = if Rng.bool rng then x86 else arm in
        let kind = if Rng.int rng 10 < 3 then Cache_sim.Store else Cache_sim.Load in
        let paddr =
          if Rng.int rng 10 < 8 then 4096 * (1 + Rng.int rng 64) + (Rng.int rng 64 * 64)
          else Rng.int rng (Addr.mib 16)
        in
        ignore (Cache_sim.access c ~node kind ~paddr)
      done;
      Cache_sim.set_probe c None;
      let ruby = Ruby_ref.create (Cache_sim.config c) in
      Trace.replay_into_ruby trace ruby;
      List.for_all
        (fun node ->
          List.for_all
            (fun level ->
              Float.abs (Cache_sim.hit_rate c node level -. Ruby_ref.hit_rate ruby node level)
              < 0.08)
            [ "l1d"; "l2" ])
        Node_id.all)

(* MESI + inclusion invariants hold after arbitrary access interleavings,
   on all three hardware models. *)
let prop_consistency =
  QCheck.Test.make ~name:"cache invariants hold under random interleavings" ~count:30
    QCheck.(pair (int_range 0 2) small_int)
    (fun (model_idx, seed) ->
      let hw = List.nth Layout.all_hw_models model_idx in
      let c = fresh ~hw () in
      let rng = Rng.create ~seed:(Int64.of_int (seed + 7)) in
      for _ = 1 to 5_000 do
        let node = if Rng.bool rng then x86 else arm in
        let kind =
          match Rng.int rng 3 with 0 -> Cache_sim.Ifetch | 1 -> Cache_sim.Load | _ -> Cache_sim.Store
        in
        (* concentrated addresses to force evictions and sharing *)
        let paddr = 4096 * Rng.int rng 128 + (64 * Rng.int rng 64) in
        ignore (Cache_sim.access c ~node kind ~paddr)
      done;
      match Cache_sim.check_consistency c with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_consistency_after_atomics () =
  let c = fresh () in
  for i = 0 to 500 do
    ignore (Cache_sim.atomic_rmw c ~node:(if i mod 2 = 0 then x86 else arm) ~paddr:(64 * (i mod 7)))
  done;
  Alcotest.(check bool) "consistent" true (Cache_sim.check_consistency c = Ok ())

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_ruby_agreement; prop_consistency ]

let () =
  Alcotest.run "cache"
    [
      ( "level",
        [
          Alcotest.test_case "lru" `Quick test_level_lru;
          Alcotest.test_case "invalidate" `Quick test_level_invalidate;
        ] );
      ( "mesi",
        [
          Alcotest.test_case "transitions" `Quick test_mesi_transitions;
          Alcotest.test_case "directory" `Quick test_directory;
        ] );
      ( "cache_sim",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "remote latency" `Quick test_remote_memory_latency;
          Alcotest.test_case "ring classification" `Quick test_ring_classified_as_remote_shared;
          Alcotest.test_case "write invalidates peer" `Quick test_write_invalidates_other_node;
          Alcotest.test_case "read of M snoops data" `Quick test_read_of_modified_snoops_data;
          Alcotest.test_case "writebacks counted" `Quick test_writeback_counted;
          Alcotest.test_case "writeback hook" `Quick test_writeback_hook_fires;
          Alcotest.test_case "fully shared L3" `Quick test_fully_shared_single_l3;
          Alcotest.test_case "atomic cost" `Quick test_atomic_costs_more;
          Alcotest.test_case "access_bytes" `Quick test_access_bytes_spans_lines;
          Alcotest.test_case "ifetch l1i" `Quick test_ifetch_uses_l1i;
          Alcotest.test_case "consistency after atomics" `Quick test_consistency_after_atomics;
        ] );
      ("properties", qsuite);
    ]
