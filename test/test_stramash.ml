(* Tests for the fused-kernel (Stramash) personality: fused VAS, remote
   walkers, PTL, fault handler, global allocator, fused namespaces. *)

module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Vma = Stramash_kernel.Vma
module Process = Stramash_kernel.Process
module Page_table = Stramash_kernel.Page_table
module Pte = Stramash_kernel.Pte
module Frame_alloc = Stramash_kernel.Frame_alloc
module Msg_layer = Stramash_popcorn.Msg_layer
module Fused_vas = Stramash_core.Fused_vas
module Remote_walker = Stramash_core.Remote_walker
module Stramash_ptl = Stramash_core.Stramash_ptl
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Fused_namespace = Stramash_core.Fused_namespace
module B = Stramash_isa.Builder
module Codegen = Stramash_isa.Codegen

let checki = Alcotest.(check int)
let x86 = Node_id.X86
let arm = Node_id.Arm

let make_env ?(hw = Layout.Shared) () =
  let cache = Cache_sim.create (Cache_config.default hw) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:x86 ~phys; Kernel.boot ~node:arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = hw;
    liveness = Stramash_sim.Liveness.create ();
  }

let trivial_mir () =
  let b = B.create () in
  ignore (B.immi b 0);
  B.finish b

let make_setup () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let faults = Stramash_fault.create env msg in
  let mir = trivial_mir () in
  let images = List.map (fun isa -> (isa, Codegen.lower ~isa mir)) Node_id.all in
  let proc = Process.create ~pid:1 ~origin:x86 ~mir ~images in
  let mm = Stramash_fault.ensure_mm faults ~proc ~node:x86 in
  ignore (Vma.add mm.Process.vmas ~start:0x10000000 ~end_:0x10100000 Vma.Anon ~writable:true);
  (env, msg, faults, proc)

let vaddr0 = 0x10000000

let silent_walk env proc node vaddr =
  let mm = Process.mm_exn proc node in
  let io =
    {
      Page_table.phys = env.Env.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> assert false);
    }
  in
  Page_table.walk mm.Process.pgtable io ~vaddr

(* ---------- Fused VAS ---------- *)

let test_fused_vas_roundtrip () =
  let p = Addr.gib 3 in
  let v = Fused_vas.kernel_vaddr_of_paddr p in
  Alcotest.(check bool) "fused pointer" true (Fused_vas.is_fused_pointer v);
  checki "roundtrip" p (Fused_vas.paddr_of_kernel_vaddr v);
  Alcotest.(check bool) "user pointer is not fused" false (Fused_vas.is_fused_pointer 0x1000)

(* ---------- PTL ---------- *)

let test_ptl_charges_and_counts () =
  let env = make_env () in
  let kernel = Env.kernel env x86 in
  let lock_addr = Stramash_kernel.Kheap.alloc_line kernel.Kernel.kheap in
  let ptl = Stramash_ptl.create env ~lock_addr in
  let r = Stramash_ptl.with_lock ptl ~actor:arm (fun () -> 42) in
  checki "returns body result" 42 r;
  checki "one acquisition" 1 (Stramash_ptl.acquisitions ptl);
  checki "remote acquisition counted" 1 (Stramash_ptl.remote_acquisitions ptl);
  Alcotest.(check bool) "arm paid for the CAS" true (Meter.get (Env.meter env arm) > 0)

let test_ptl_releases_on_exception () =
  let env = make_env () in
  let kernel = Env.kernel env x86 in
  let ptl = Stramash_ptl.create env ~lock_addr:(Stramash_kernel.Kheap.alloc_line kernel.Kernel.kheap) in
  (try Stramash_ptl.with_lock ptl ~actor:x86 (fun () -> failwith "boom") with Failure _ -> ());
  (* must be reacquirable *)
  checki "lock released" 2
    (Stramash_ptl.with_lock ptl ~actor:x86 (fun () -> Stramash_ptl.acquisitions ptl))

(* ---------- Remote walker ---------- *)

let test_remote_walk_decodes_other_format () =
  let env, _msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  let omm = Process.mm_exn proc x86 in
  match Remote_walker.walk env ~actor:arm ~owner_mm:omm ~vaddr:vaddr0 with
  | Some (frame, flags) ->
      Alcotest.(check bool) "decoded frame points into x86 memory" true
        (Layout.region_contains Layout.x86_private (frame lsl Addr.page_shift));
      Alcotest.(check bool) "flags decoded" true flags.Pte.writable
  | None -> Alcotest.fail "remote walk failed"

let test_remote_walk_charges_actor () =
  let env, _msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  let omm = Process.mm_exn proc x86 in
  let before = Meter.get (Env.meter env arm) in
  ignore (Remote_walker.walk env ~actor:arm ~owner_mm:omm ~vaddr:vaddr0);
  Alcotest.(check bool) "actor pays for the walk" true (Meter.get (Env.meter env arm) > before)

let test_install_leaf_requires_uppers () =
  let env, _msg, faults, proc = make_setup () in
  let omm = Process.mm_exn proc x86 in
  Alcotest.(check bool) "no uppers yet" false
    (Remote_walker.install_leaf env ~actor:arm ~owner_mm:omm ~vaddr:vaddr0 ~frame:7
       ~remote_owned:true ());
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:(vaddr0 + 8192) ~write:true;
  Alcotest.(check bool) "uppers created by neighbour fault" true
    (Remote_walker.install_leaf env ~actor:arm ~owner_mm:omm ~vaddr:vaddr0 ~frame:7
       ~remote_owned:true ());
  match silent_walk env proc x86 vaddr0 with
  | Some (7, flags) -> Alcotest.(check bool) "remote_owned set" true flags.Pte.remote_owned
  | _ -> Alcotest.fail "leaf not installed in origin format"

(* ---------- Stramash fault handler ---------- *)

let test_shared_frame_no_replication () =
  let env, msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  let x86_frame = match silent_walk env proc x86 vaddr0 with Some (f, _) -> f | None -> -1 in
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:vaddr0 ~write:false;
  let arm_frame = match silent_walk env proc arm vaddr0 with Some (f, _) -> f | None -> -2 in
  checki "both kernels map the same frame" x86_frame arm_frame;
  checki "no fallback pages" 0 (Stramash_fault.fallback_pages faults);
  checki "one shared mapping" 1 (Stramash_fault.shared_mappings faults);
  checki "no messages for the fast path" 0 (Msg_layer.message_count msg)

let test_remote_anon_alloc_is_local_and_installed_in_origin () =
  let env, msg, faults, proc = make_setup () in
  (* Fault a neighbouring page at the origin first so the leaf table exists. *)
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:(vaddr0 + 4096) ~write:true;
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:vaddr0 ~write:true;
  (match silent_walk env proc arm vaddr0 with
  | Some (frame, _) ->
      Alcotest.(check bool) "frame is arm-local" true
        (Layout.region_contains Layout.arm_private (frame lsl Addr.page_shift))
  | None -> Alcotest.fail "arm mapping missing");
  (match silent_walk env proc x86 vaddr0 with
  | Some (_, flags) -> Alcotest.(check bool) "origin PTE marked remote-owned" true flags.Pte.remote_owned
  | None -> Alcotest.fail "origin PTE missing");
  checki "no messages on the PTE fast path" 0 (Msg_layer.message_count msg)

let test_fallback_when_uppers_missing () =
  let env, msg, faults, proc = make_setup () in
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  (* First remote touch of a fresh region: the origin's table lacks the
     directories, so the origin kernel handles the fault (one message
     round) and the page lands in origin memory. *)
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:vaddr0 ~write:true;
  checki "fallback counted" 1 (Stramash_fault.fallback_pages faults);
  checki "one message round" 2 (Msg_layer.message_count msg);
  (match silent_walk env proc arm vaddr0 with
  | Some (frame, _) ->
      Alcotest.(check bool) "page allocated by the origin" true
        (Layout.region_contains Layout.x86_private (frame lsl Addr.page_shift))
  | None -> Alcotest.fail "arm mapping missing");
  (* Subsequent faults in the same region take the fast path. *)
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:(vaddr0 + 4096) ~write:true;
  checki "no further fallback" 1 (Stramash_fault.fallback_pages faults)

let test_remote_vma_walk_no_replica () =
  let env, _msg, faults, proc = make_setup () in
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:vaddr0 ~write:true;
  let arm_mm = Process.mm_exn proc arm in
  ignore env;
  checki "remote kernel keeps no VMA replicas" 0 (Vma.count arm_mm.Process.vmas)

(* ---------- Global allocator ---------- *)

let test_global_alloc_grant_and_pressure () =
  let env = make_env () in
  let ga = Global_alloc.create env ~block_size:(Addr.mib 16) ~rng:(Rng.create ~seed:3L) () in
  let free0 = Global_alloc.free_blocks ga in
  Alcotest.(check bool) "pool has blocks" true (free0 > 100);
  (match Global_alloc.request_block ga arm with
  | Ok region -> checki "block sized" (Addr.mib 16) (Layout.region_size region)
  | Error `Exhausted -> Alcotest.fail "pool empty?");
  checki "one fewer free" (free0 - 1) (Global_alloc.free_blocks ga);
  checki "arm owns one" 1 (Global_alloc.blocks_owned ga arm);
  Alcotest.(check bool) "online charged" true (Meter.get (Env.meter env arm) > 0);
  (* the kernel can now allocate from the pool block *)
  let kernel = Env.kernel env arm in
  let before = Frame_alloc.total_frames kernel.Kernel.frames in
  Alcotest.(check bool) "frames grew" true (before > Layout.region_size Layout.arm_private / 4096 - 1)

let test_global_alloc_release () =
  let env = make_env () in
  let ga = Global_alloc.create env ~rng:(Rng.create ~seed:3L) () in
  let region = match Global_alloc.request_block ga x86 with Ok r -> r | Error _ -> assert false in
  Alcotest.(check bool) "release ok" true (Global_alloc.release_block ga x86 region = Ok ());
  checki "no longer owned" 0 (Global_alloc.blocks_owned ga x86)

let test_pressure_policy () =
  let env = make_env () in
  let ga = Global_alloc.create env ~rng:(Rng.create ~seed:3L) () in
  Alcotest.(check bool) "no grant below threshold" false (Global_alloc.check_pressure ga x86);
  (* exhaust most of the x86 kernel's private memory *)
  let kernel = Env.kernel env x86 in
  let total = Frame_alloc.total_frames kernel.Kernel.frames in
  for _ = 1 to total * 3 / 4 do
    ignore (Frame_alloc.alloc_exn kernel.Kernel.frames)
  done;
  Alcotest.(check bool) "grant above 70%" true (Global_alloc.check_pressure ga x86);
  checki "block granted" 1 (Global_alloc.blocks_owned ga x86)

(* ---------- Fused namespaces ---------- *)

let test_fused_namespaces () =
  let env = make_env () in
  let ka = Env.kernel env x86 and kb = Env.kernel env arm in
  Alcotest.(check bool) "distinct before fusing" false
    (Fused_namespace.same_environment ka.Kernel.ns kb.Kernel.ns);
  let fused = Fused_namespace.fuse_kernels ka kb in
  Alcotest.(check bool) "fused equals origin view" true
    (Fused_namespace.same_environment ka.Kernel.ns fused)

let () =
  Alcotest.run "stramash"
    [
      ("fused_vas", [ Alcotest.test_case "roundtrip" `Quick test_fused_vas_roundtrip ]);
      ( "ptl",
        [
          Alcotest.test_case "charges and counts" `Quick test_ptl_charges_and_counts;
          Alcotest.test_case "exception safety" `Quick test_ptl_releases_on_exception;
        ] );
      ( "remote_walker",
        [
          Alcotest.test_case "decodes other format" `Quick test_remote_walk_decodes_other_format;
          Alcotest.test_case "charges actor" `Quick test_remote_walk_charges_actor;
          Alcotest.test_case "install leaf needs uppers" `Quick test_install_leaf_requires_uppers;
        ] );
      ( "fault",
        [
          Alcotest.test_case "shared frame, no replication" `Quick test_shared_frame_no_replication;
          Alcotest.test_case "remote anon local alloc" `Quick
            test_remote_anon_alloc_is_local_and_installed_in_origin;
          Alcotest.test_case "origin fallback" `Quick test_fallback_when_uppers_missing;
          Alcotest.test_case "no VMA replicas" `Quick test_remote_vma_walk_no_replica;
        ] );
      ( "global_alloc",
        [
          Alcotest.test_case "grant" `Quick test_global_alloc_grant_and_pressure;
          Alcotest.test_case "release" `Quick test_global_alloc_release;
          Alcotest.test_case "70% policy" `Quick test_pressure_policy;
        ] );
      ("namespaces", [ Alcotest.test_case "fuse" `Quick test_fused_namespaces ]);
    ]
