(* Tests for the simulation substrate: RNG, cycles, event engine, metrics,
   meters. *)

module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Engine = Stramash_sim.Engine
module Metrics = Stramash_sim.Metrics
module Meter = Stramash_sim.Meter
module Node_id = Stramash_sim.Node_id
module Quantum = Stramash_sim.Quantum
module Domain_pool = Stramash_sim.Domain_pool

let checki = Alcotest.(check int)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:8L in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy () =
  let a = Rng.create ~seed:3L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:3L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int in range" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  QCheck.Test.make ~name:"rng int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-500) 500) (int_range 0 500))
    (fun (seed, lo, span) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in range" ~count:500 QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.float rng 5.0 in
      v >= 0.0 && v < 5.0)

let test_rng_gaussian_mean () =
  let rng = Rng.create ~seed:11L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.gaussian rng ~mean:10.0 ~sigma:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "gaussian mean near 10" true (Float.abs (mean -. 10.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:5L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_huge_bound_in_range () =
  (* A bound just under 2^62 exercises the rejection path: naive modulo
     would fold the tiny tail of the 62-bit draw onto the low residues. *)
  let rng = Rng.create ~seed:9L in
  let bound = max_int - (max_int / 3) in
  for _ = 1 to 1000 do
    let v = Rng.int rng bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
  done

let test_rng_int_unbiased_small_bound () =
  (* With rejection sampling every residue class of a non-power-of-two
     bound is equally likely; a 3-way split over 30k draws stays well
     within +-5% of uniform. *)
  let rng = Rng.create ~seed:13L in
  let counts = Array.make 3 0 in
  let n = 30000 in
  for _ = 1 to n do
    let v = Rng.int rng 3 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 2% of uniform" true
        (Float.abs ((float_of_int c /. float_of_int n) -. (1.0 /. 3.0)) < 0.02))
    counts

(* ---------- Cycles ---------- *)

let test_cycles_roundtrip () =
  let c = Cycles.of_us 2.0 in
  Alcotest.(check bool) "2us at 2.1GHz = 4200 cycles" true (c = 4200);
  Alcotest.(check bool) "to_us inverse" true (Float.abs (Cycles.to_us c -. 2.0) < 0.001)

let test_cycles_of_ns_rounds () =
  checki "1ns rounds to 2 cycles" 2 (Cycles.of_ns 1.0)

(* ---------- Engine ---------- *)

let test_engine_fires_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log);
  Engine.run_until_idle e;
  Alcotest.(check (list int)) "timestamp order" [ 10; 20; 30 ] (List.rev !log);
  checki "clock at last event" 30 (Engine.now e)

let test_engine_equal_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:10 (fun () -> log := i :: !log)
  done;
  Engine.run_until_idle e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_advance_fires_passed_events () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:5 (fun () -> fired := true);
  Engine.advance e 3;
  Alcotest.(check bool) "not yet" false !fired;
  Engine.advance e 3;
  Alcotest.(check bool) "fired when passed" true !fired;
  checki "clock advanced fully" 6 (Engine.now e)

let test_engine_event_schedules_event () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () ->
      log := `A :: !log;
      Engine.schedule e ~delay:5 (fun () -> log := `B :: !log));
  Engine.run_until_idle e;
  checki "cascaded time" 10 (Engine.now e);
  checki "both fired" 2 (List.length !log)

let test_engine_pending () =
  let e = Engine.create () in
  checki "empty" 0 (Engine.pending e);
  Engine.schedule e ~delay:1 ignore;
  Engine.schedule e ~delay:2 ignore;
  checki "two pending" 2 (Engine.pending e);
  Alcotest.(check (option int)) "next at 1" (Some 1) (Engine.next_event_at e)

let prop_engine_order =
  QCheck.Test.make ~name:"engine always fires in timestamp order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 1000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> fired := Engine.now e :: !fired)) delays;
      Engine.run_until_idle e;
      let times = List.rev !fired in
      List.sort compare times = times && List.length times = List.length delays)

let test_engine_rejects_past_and_negative () =
  let e = Engine.create () in
  Engine.advance e 10;
  Alcotest.(check bool) "schedule_at in the past refused" true
    (try
       Engine.schedule_at e ~at:5 ignore;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative advance refused" true
    (try
       Engine.advance e (-1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay refused" true
    (try
       Engine.schedule e ~delay:(-3) ignore;
       false
     with Invalid_argument _ -> true)

(* ---------- Metrics ---------- *)

let test_metrics_counters () =
  let reg = Metrics.registry () in
  checki "missing is 0" 0 (Metrics.get reg "x");
  Metrics.incr reg "x";
  Metrics.add reg "x" 4;
  checki "incr+add" 5 (Metrics.get reg "x");
  Metrics.set reg "y" 7;
  Alcotest.(check (list string)) "names sorted" [ "x"; "y" ] (Metrics.names reg);
  let total = Metrics.fold reg ~init:0 ~f:(fun acc _ v -> acc + v) in
  checki "fold sums" 12 total

let test_histogram () =
  let h = Metrics.Histogram.create ~buckets:10 ~lo:0.0 ~hi:100.0 in
  List.iter (Metrics.Histogram.record h) [ 5.0; 15.0; 15.0; 95.0; 150.0 ];
  checki "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check bool) "min" true (Metrics.Histogram.min_value h = 5.0);
  Alcotest.(check bool) "max includes overflow" true (Metrics.Histogram.max_value h = 150.0);
  let p50 = Metrics.Histogram.percentile h 0.5 in
  Alcotest.(check bool) "median in low buckets" true (p50 <= 30.0)

let test_histogram_percentile_interpolates () =
  (* One sample per unit bucket: the interpolated percentile must land on
     the exact rank, not the bucket's lower edge. *)
  let h = Metrics.Histogram.create ~buckets:100 ~lo:0.0 ~hi:100.0 in
  for i = 0 to 99 do
    Metrics.Histogram.record h (float_of_int i +. 0.5)
  done;
  let near expected got = Float.abs (got -. expected) <= 1.0 in
  Alcotest.(check bool) "p50 ~ 50" true (near 50.0 (Metrics.Histogram.p50 h));
  Alcotest.(check bool) "p95 ~ 95" true (near 95.0 (Metrics.Histogram.p95 h));
  Alcotest.(check bool) "p99 ~ 99" true (near 99.0 (Metrics.Histogram.p99 h));
  Alcotest.(check bool) "p0 clamps to min" true
    (Metrics.Histogram.percentile h 0.0 >= Metrics.Histogram.min_value h);
  Alcotest.(check bool) "p1 clamps to max" true
    (Metrics.Histogram.percentile h 1.0 <= Metrics.Histogram.max_value h);
  (* out-of-range p is clamped, not an error *)
  Alcotest.(check bool) "p>1 clamped" true
    (Metrics.Histogram.percentile h 2.0 <= Metrics.Histogram.max_value h)

let test_histogram_edge_cases () =
  (* Every percentile of an empty histogram reads 0, not NaN or a raise —
     campaign tables render before any sample may have landed. *)
  let empty = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:10.0 in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Metrics.Histogram.p50 empty);
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Metrics.Histogram.p99 empty);
  (* With one sample, clamping to [min, max] pins every percentile to it. *)
  let one = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:100.0 in
  Metrics.Histogram.record one 37.0;
  Alcotest.(check (float 0.0)) "single-sample p50" 37.0 (Metrics.Histogram.p50 one);
  Alcotest.(check (float 0.0)) "single-sample p99" 37.0 (Metrics.Histogram.p99 one);
  (* Same shape, disjoint occupied ranges: counts, extrema and the tail
     all reflect the union. *)
  let low = Metrics.Histogram.create ~buckets:10 ~lo:0.0 ~hi:100.0 in
  let high = Metrics.Histogram.create ~buckets:10 ~lo:0.0 ~hi:100.0 in
  List.iter (Metrics.Histogram.record low) [ 1.0; 2.0; 3.0 ];
  List.iter (Metrics.Histogram.record high) [ 91.0; 92.0 ];
  let merged = Metrics.Histogram.merge low high in
  checki "merged count" 5 (Metrics.Histogram.count merged);
  Alcotest.(check (float 0.0)) "merged min" 1.0 (Metrics.Histogram.min_value merged);
  Alcotest.(check (float 0.0)) "merged max" 92.0 (Metrics.Histogram.max_value merged);
  Alcotest.(check bool) "merged p99 lands in the high range" true
    (Metrics.Histogram.p99 merged >= 90.0);
  (* Disjoint bucket *ranges* are a shape mismatch, refused loudly. *)
  let shifted = Metrics.Histogram.create ~buckets:10 ~lo:100.0 ~hi:200.0 in
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Histogram.merge: shape mismatch")
    (fun () -> ignore (Metrics.Histogram.merge low shifted))

let test_histogram_accessors () =
  (* Accessors on an empty histogram read 0, not NaN — the serving
     campaign renders count/mean/max columns before a cell may have
     recorded anything. *)
  let empty = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:10.0 in
  checki "empty count" 0 (Metrics.Histogram.count empty);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Metrics.Histogram.mean empty);
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Metrics.Histogram.min_value empty);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Metrics.Histogram.max_value empty);
  (* The mean is exact (running sum / count), not bucket-quantised, and
     overflow samples still contribute to count, mean and max. *)
  let h = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:10.0 in
  List.iter (Metrics.Histogram.record h) [ 2.0; 4.0; 12.0 ];
  checki "count includes overflow" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean exact" 6.0 (Metrics.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min" 2.0 (Metrics.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max from overflow" 12.0 (Metrics.Histogram.max_value h)

(* ---------- Meter ---------- *)

let test_meter () =
  let m = Meter.create () in
  Meter.add m 10;
  let dt = Meter.delta m (fun () -> Meter.add m 32) in
  checki "delta observes inner cost" 32 dt;
  checki "total" 42 (Meter.get m);
  Meter.reset m;
  checki "reset" 0 (Meter.get m)

(* ---------- Node_id ---------- *)

let test_node_id () =
  Alcotest.(check bool) "other is involutive" true
    (List.for_all (fun n -> Node_id.other (Node_id.other n) = n) Node_id.all);
  checki "x86 index" 0 (Node_id.index Node_id.X86);
  Alcotest.(check bool) "of_index inverse" true
    (List.for_all (fun n -> Node_id.of_index (Node_id.index n) = n) Node_id.all)

(* ---------- Quantum (registration order is the firing order) ---------- *)

let test_quantum_registration_order () =
  let q = Quantum.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Quantum.add q (fun ~now:_ -> log := i :: !log)
  done;
  Quantum.fire q ~now:0;
  Alcotest.(check (list int)) "oldest registration first" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log);
  checki "count" 10 (Quantum.count q)

let test_quantum_hook_added_during_fire () =
  let q = Quantum.create () in
  let log = ref [] in
  Quantum.add q (fun ~now:_ ->
      log := "a" :: !log;
      if Quantum.count q = 1 then Quantum.add q (fun ~now:_ -> log := "b" :: !log));
  Quantum.fire q ~now:0;
  Alcotest.(check (list string)) "mid-sweep registration deferred" [ "a" ] (List.rev !log);
  Quantum.fire q ~now:1;
  Alcotest.(check (list string)) "fires after existing hooks next quantum" [ "a"; "a"; "b" ]
    (List.rev !log)

(* ---------- Domain_pool ---------- *)

let test_domain_pool_task_order () =
  let tasks = Array.init 13 (fun i () -> i * i) in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "results indexed by task at %d domains" domains)
        (Array.init 13 (fun i -> i * i))
        (Domain_pool.map ~domains tasks))
    [ 1; 2; 4; 32 ]

let test_domain_pool_first_error_by_task_order () =
  let exception Boom of int in
  (* tasks 3 and 7 fail; whichever domain hits one first, the error that
     escapes must be task 3's *)
  let tasks =
    Array.init 10 (fun i () -> if i = 3 || i = 7 then raise (Boom i) else i)
  in
  List.iter
    (fun domains ->
      match Domain_pool.map ~domains tasks with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          checki (Printf.sprintf "first failing task at %d domains" domains) 3 i)
    [ 1; 4 ]

let test_domain_pool_empty_and_inline () =
  Alcotest.(check (array int)) "empty" [||] (Domain_pool.map ~domains:4 [||]);
  let ran_on = ref [] in
  let tasks = Array.init 3 (fun i () -> ran_on := i :: !ran_on) in
  ignore (Domain_pool.map ~domains:1 tasks);
  (* inline path runs sequentially, in order, on the calling domain *)
  Alcotest.(check (list int)) "inline order" [ 0; 1; 2 ] (List.rev !ran_on)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_rng_int_range; prop_rng_int_in; prop_rng_float_range; prop_engine_order ]

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian mean" `Quick test_rng_gaussian_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bad bound rejected" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "huge bound in range" `Quick test_rng_int_huge_bound_in_range;
          Alcotest.test_case "small bound unbiased" `Quick test_rng_int_unbiased_small_bound;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "roundtrip" `Quick test_cycles_roundtrip;
          Alcotest.test_case "rounding" `Quick test_cycles_of_ns_rounds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fires in order" `Quick test_engine_fires_in_order;
          Alcotest.test_case "equal-time fifo" `Quick test_engine_equal_time_fifo;
          Alcotest.test_case "advance fires passed" `Quick test_engine_advance_fires_passed_events;
          Alcotest.test_case "cascading events" `Quick test_engine_event_schedules_event;
          Alcotest.test_case "pending/next" `Quick test_engine_pending;
          Alcotest.test_case "rejects past/negative" `Quick test_engine_rejects_past_and_negative;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "percentile interpolation" `Quick test_histogram_percentile_interpolates;
          Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
          Alcotest.test_case "histogram accessors" `Quick test_histogram_accessors;
          Alcotest.test_case "meter" `Quick test_meter;
        ] );
      ("node_id", [ Alcotest.test_case "basics" `Quick test_node_id ]);
      ( "quantum",
        [
          Alcotest.test_case "registration order fires" `Quick test_quantum_registration_order;
          Alcotest.test_case "mid-sweep add deferred" `Quick test_quantum_hook_added_during_fire;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "task-order results" `Quick test_domain_pool_task_order;
          Alcotest.test_case "first error by task order" `Quick
            test_domain_pool_first_error_by_task_order;
          Alcotest.test_case "empty + inline" `Quick test_domain_pool_empty_and_inline;
        ] );
      ("properties", qsuite);
    ]
