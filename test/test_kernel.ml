(* Tests for the kernel substrate: rb-tree, PTE formats, page tables, TLB,
   allocators, VMAs, futex buckets, hotplug, namespaces. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Rbtree = Stramash_kernel.Rbtree
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Tlb = Stramash_kernel.Tlb
module Frame_alloc = Stramash_kernel.Frame_alloc
module Kheap = Stramash_kernel.Kheap
module Vma = Stramash_kernel.Vma
module Futex = Stramash_kernel.Futex
module Hotplug = Stramash_kernel.Hotplug
module Namespace = Stramash_kernel.Namespace
module Kernel = Stramash_kernel.Kernel

let checki = Alcotest.(check int)

(* ---------- Rbtree ---------- *)

let test_rbtree_basic () =
  let t = Rbtree.create () in
  Alcotest.(check bool) "empty" true (Rbtree.is_empty t);
  Rbtree.insert t ~key:5 "five";
  Rbtree.insert t ~key:3 "three";
  Rbtree.insert t ~key:8 "eight";
  checki "size" 3 (Rbtree.size t);
  Alcotest.(check (option string)) "find" (Some "three") (Rbtree.find t ~key:3);
  Alcotest.(check (option string)) "missing" None (Rbtree.find t ~key:4);
  Rbtree.insert t ~key:3 "THREE";
  checki "replace keeps size" 3 (Rbtree.size t);
  Alcotest.(check (option string)) "replaced" (Some "THREE") (Rbtree.find t ~key:3)

let test_rbtree_floor () =
  let t = Rbtree.create () in
  List.iter (fun k -> Rbtree.insert t ~key:k (string_of_int k)) [ 10; 20; 30 ];
  Alcotest.(check (option (pair int string))) "exact" (Some (20, "20")) (Rbtree.find_floor t ~key:20);
  Alcotest.(check (option (pair int string))) "between" (Some (20, "20")) (Rbtree.find_floor t ~key:25);
  Alcotest.(check (option (pair int string))) "below all" None (Rbtree.find_floor t ~key:5);
  Alcotest.(check (option (pair int string))) "above all" (Some (30, "30")) (Rbtree.find_floor t ~key:99)

let test_rbtree_remove () =
  let t = Rbtree.create () in
  List.iter (fun k -> Rbtree.insert t ~key:k k) [ 5; 2; 8; 1; 3; 7; 9; 6 ];
  Alcotest.(check bool) "remove hit" true (Rbtree.remove t ~key:5);
  Alcotest.(check bool) "remove miss" false (Rbtree.remove t ~key:5);
  checki "size after removals" 7 (Rbtree.size t);
  Alcotest.(check (option int)) "others intact" (Some 6) (Rbtree.find t ~key:6);
  Alcotest.(check bool) "invariants hold" true (Rbtree.check_invariants t = Ok ())

let test_rbtree_iter_sorted () =
  let t = Rbtree.create () in
  List.iter (fun k -> Rbtree.insert t ~key:k ()) [ 42; 7; 19; 3; 88; 54 ];
  let keys = List.map fst (Rbtree.to_list t) in
  Alcotest.(check (list int)) "sorted iteration" [ 3; 7; 19; 42; 54; 88 ] keys

let test_rbtree_visit_counts_path () =
  let t = Rbtree.create () in
  for i = 0 to 1023 do
    Rbtree.insert t ~key:i i
  done;
  let visits = ref 0 in
  ignore (Rbtree.find ~visit:(fun _ -> incr visits) t ~key:777);
  Alcotest.(check bool) "search path is logarithmic" true (!visits <= 2 * 11)

let prop_rbtree_model =
  QCheck.Test.make ~name:"rbtree agrees with a sorted-map model and keeps invariants" ~count:100
    QCheck.(list (pair (int_range 0 200) bool))
    (fun ops ->
      let t = Rbtree.create () in
      let model = Hashtbl.create 64 in
      List.for_all
        (fun (k, insert) ->
          if insert then begin
            Rbtree.insert t ~key:k k;
            Hashtbl.replace model k k
          end
          else begin
            let removed = Rbtree.remove t ~key:k in
            let expected = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if removed <> expected then raise Exit
          end;
          Rbtree.check_invariants t = Ok ()
          && Rbtree.size t = Hashtbl.length model
          && Hashtbl.fold (fun k v acc -> acc && Rbtree.find t ~key:k = Some v) model true)
        ops)

(* ---------- Pte ---------- *)

let prop_pte_roundtrip =
  QCheck.Test.make ~name:"pte encode/decode roundtrip on both ISA formats" ~count:300
    QCheck.(
      pair (int_range 0 0xFFFFF)
        (pair (pair bool bool) (pair bool (pair bool bool))))
    (fun (frame, ((writable, user), (accessed, (dirty, remote_owned)))) ->
      let flags = { Pte.present = true; writable; user; accessed; dirty; remote_owned } in
      List.for_all
        (fun isa -> Pte.decode ~isa (Pte.encode ~isa ~frame flags) = Some (frame, flags))
        Node_id.all)

let test_pte_formats_differ () =
  let flags = Pte.default_flags in
  let x = Pte.encode ~isa:Node_id.X86 ~frame:0x1234 flags in
  let a = Pte.encode ~isa:Node_id.Arm ~frame:0x1234 flags in
  Alcotest.(check bool) "encodings differ" true (x <> a);
  (* Decoding with the wrong format misreads the permissions: the armish
     encoding of a writable page has no bit where x86ish keeps RW. *)
  match Pte.decode ~isa:Node_id.X86 a with
  | Some (_, f) -> Alcotest.(check bool) "cross-decode misreads writable" true (not f.Pte.writable)
  | None -> ()

let test_pte_not_present () =
  List.iter
    (fun isa -> Alcotest.(check bool) "zero entry absent" true (Pte.decode ~isa Pte.not_present = None))
    Node_id.all

(* ---------- Page_table ---------- *)

let make_pt isa =
  let phys = Phys_mem.create () in
  let kernel = Kernel.boot ~node:isa ~phys in
  let reads = ref 0 and writes = ref 0 in
  let io =
    {
      Page_table.phys;
      charge_read = (fun _ -> incr reads);
      charge_write = (fun _ -> incr writes);
      alloc_table = (fun () -> Kernel.alloc_table_page kernel);
    }
  in
  (Page_table.create ~isa io, io, reads, writes)

let test_page_table_map_walk () =
  List.iter
    (fun isa ->
      let pt, io, _, _ = make_pt isa in
      let vaddr = 0x12345000 in
      Alcotest.(check bool) "unmapped walk" true (Page_table.walk pt io ~vaddr = None);
      Page_table.map pt io ~vaddr ~frame:0x777 Pte.default_flags;
      (match Page_table.walk pt io ~vaddr with
      | Some (frame, flags) ->
          checki "frame" 0x777 frame;
          Alcotest.(check bool) "writable" true flags.Pte.writable
      | None -> Alcotest.fail "expected mapping");
      Alcotest.(check bool) "unmap" true (Page_table.unmap pt io ~vaddr);
      Alcotest.(check bool) "gone" true (Page_table.walk pt io ~vaddr = None))
    Node_id.all

let test_page_table_walk_charges_five_levels () =
  let pt, io, reads, _ = make_pt Node_id.X86 in
  Page_table.map pt io ~vaddr:0x40000000 ~frame:1 Pte.default_flags;
  reads := 0;
  ignore (Page_table.walk pt io ~vaddr:0x40000000);
  checki "5-level walk = 5 entry reads" Page_table.levels !reads

let test_page_table_upper_levels () =
  let pt, io, _, _ = make_pt Node_id.Arm in
  let vaddr = 0x40000000 in
  Alcotest.(check bool) "no uppers before map" false (Page_table.upper_levels_present pt io ~vaddr);
  Alcotest.(check bool) "leaf install refused" false
    (Page_table.set_leaf_if_upper_present pt io ~vaddr ~frame:3 Pte.default_flags);
  Page_table.map pt io ~vaddr ~frame:3 Pte.default_flags;
  Alcotest.(check bool) "uppers after map" true (Page_table.upper_levels_present pt io ~vaddr);
  (* a neighbouring page in the same leaf table can now be set directly *)
  Alcotest.(check bool) "leaf install ok" true
    (Page_table.set_leaf_if_upper_present pt io ~vaddr:(vaddr + 4096) ~frame:4 Pte.default_flags)

let test_page_table_update_flags () =
  let pt, io, _, _ = make_pt Node_id.X86 in
  Page_table.map pt io ~vaddr:0x5000 ~frame:9 Pte.default_flags;
  Alcotest.(check bool) "update" true
    (Page_table.update_flags pt io ~vaddr:0x5000 { Pte.default_flags with writable = false });
  match Page_table.walk pt io ~vaddr:0x5000 with
  | Some (9, flags) -> Alcotest.(check bool) "now read-only" false flags.Pte.writable
  | _ -> Alcotest.fail "mapping lost"

(* ---------- Tlb ---------- *)

let test_tlb () =
  let tlb = Tlb.create ~entries:16 () in
  Alcotest.(check bool) "cold miss" true (Tlb.lookup tlb ~asid:1 ~vpage:5 = None);
  Tlb.insert tlb ~asid:1 ~vpage:5 { Tlb.frame = 42; writable = true };
  (match Tlb.lookup tlb ~asid:1 ~vpage:5 with
  | Some e -> checki "hit frame" 42 e.Tlb.frame
  | None -> Alcotest.fail "expected hit");
  (* a different address space must not alias the same virtual page *)
  Alcotest.(check bool) "asid isolation" true (Tlb.lookup tlb ~asid:2 ~vpage:5 = None);
  (* conflicting vpage maps to same slot (16 entries) *)
  Tlb.insert tlb ~asid:1 ~vpage:21 { Tlb.frame = 1; writable = false };
  Alcotest.(check bool) "conflict evicts" true (Tlb.lookup tlb ~asid:1 ~vpage:5 = None);
  Tlb.flush_page tlb ~vpage:21;
  Alcotest.(check bool) "flush_page" true (Tlb.lookup tlb ~asid:1 ~vpage:21 = None);
  Tlb.insert tlb ~asid:1 ~vpage:9 { Tlb.frame = 7; writable = true };
  Tlb.flush_all tlb;
  Alcotest.(check bool) "flush_all" true (Tlb.lookup tlb ~asid:1 ~vpage:9 = None);
  checki "hits counted" 1 (Tlb.hits tlb)

(* ---------- Frame_alloc ---------- *)

let region lo pages = { Layout.lo; hi = lo + (pages * Addr.page_size) }

let test_frame_alloc () =
  let fa = Frame_alloc.create ~name:"t" in
  Frame_alloc.add_region fa (region 0 4);
  checki "total" 4 (Frame_alloc.total_frames fa);
  let a = Frame_alloc.alloc_exn fa in
  let b = Frame_alloc.alloc_exn fa in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "allocated" true (Frame_alloc.is_allocated fa a);
  Frame_alloc.free fa a;
  Alcotest.(check bool) "free again" false (Frame_alloc.is_allocated fa a);
  checki "used" 1 (Frame_alloc.used_frames fa);
  Alcotest.check_raises "double free" (Invalid_argument "t: free of unallocated frame 0x0")
    (fun () -> Frame_alloc.free fa a)

let test_frame_alloc_exhaustion () =
  let fa = Frame_alloc.create ~name:"t" in
  Frame_alloc.add_region fa (region 0 2);
  ignore (Frame_alloc.alloc_exn fa);
  ignore (Frame_alloc.alloc_exn fa);
  Alcotest.(check bool) "exhausted" true (Frame_alloc.alloc fa = None)

let test_frame_alloc_remove_region () =
  let fa = Frame_alloc.create ~name:"t" in
  Frame_alloc.add_region fa (region 0 2);
  Frame_alloc.add_region fa (region 8192 2);
  let a = Frame_alloc.alloc_exn fa in
  Alcotest.(check bool) "cannot remove region in use" true
    (Frame_alloc.remove_region fa (region 0 2) = Error (`Pages_in_use 1));
  Frame_alloc.free fa a;
  Alcotest.(check bool) "removable when free" true (Frame_alloc.remove_region fa (region 0 2) = Ok ());
  (* all further allocations come from the second region *)
  let b = Frame_alloc.alloc_exn fa in
  Alcotest.(check bool) "allocates from live region" true (b >= 8192);
  Alcotest.(check bool) "pressure sane" true (Frame_alloc.pressure fa <= 1.0)

(* ---------- Kheap ---------- *)

let test_kheap_alignment () =
  let fa = Frame_alloc.create ~name:"t" in
  Frame_alloc.add_region fa (region 0 16);
  let kh = Kheap.create ~alloc_frame:(fun () -> Frame_alloc.alloc_exn fa) in
  let a = Kheap.alloc_line kh in
  let b = Kheap.alloc_line kh in
  checki "line aligned" 0 (a land 63);
  Alcotest.(check bool) "lines distinct" true (Addr.line_of a <> Addr.line_of b);
  let c = Kheap.alloc kh ~bytes:8 in
  checki "8-aligned" 0 (c land 7)

(* ---------- Vma ---------- *)

let make_vmas () =
  let next = ref 0 in
  Vma.create_set ~alloc_struct:(fun () ->
      next := !next + 64;
      !next)

let test_vma () =
  let set = make_vmas () in
  let v = Vma.add set ~start:0x1000 ~end_:0x5000 Vma.Heap ~writable:true in
  checki "pages" 4 (Vma.pages v);
  (match Vma.find set ~vaddr:0x2000 with
  | Some f -> Alcotest.(check bool) "same vma" true (f.Vma.v_start = 0x1000)
  | None -> Alcotest.fail "expected vma");
  Alcotest.(check bool) "miss below" true (Vma.find set ~vaddr:0xFFF = None);
  Alcotest.(check bool) "miss above" true (Vma.find set ~vaddr:0x5000 = None);
  Alcotest.check_raises "overlap rejected" (Invalid_argument "Vma.add: overlapping VMA") (fun () ->
      ignore (Vma.add set ~start:0x4000 ~end_:0x6000 Vma.Anon ~writable:true));
  ignore (Vma.add set ~start:0x5000 ~end_:0x6000 Vma.Anon ~writable:false);
  checki "two vmas" 2 (Vma.count set)

(* ---------- Futex ---------- *)

let test_futex_buckets () =
  let next = ref 0 in
  let f = Futex.create ~alloc_struct:(fun () -> incr next; !next * 64) in
  let addr1 = Futex.bucket_addr f ~uaddr:0x100 in
  let addr2 = Futex.bucket_addr f ~uaddr:0x100 in
  checki "stable bucket address" addr1 addr2;
  Futex.enqueue_waiter f ~uaddr:0x100 ~tid:1;
  Futex.enqueue_waiter f ~uaddr:0x100 ~tid:2;
  checki "waiters" 2 (Futex.waiter_count f ~uaddr:0x100);
  Alcotest.(check (option int)) "fifo wake" (Some 1) (Futex.dequeue_waiter f ~uaddr:0x100);
  Alcotest.(check bool) "remove specific" true (Futex.remove_waiter f ~uaddr:0x100 ~tid:2);
  checki "empty" 0 (Futex.waiter_count f ~uaddr:0x100)

(* ---------- Hotplug (Table 4 calibration) ---------- *)

let test_hotplug_cost_model () =
  (* Table 4 anchor points within 15% *)
  let near ~got ~want = Float.abs (got -. want) /. want < 0.15 in
  Alcotest.(check bool) "x86 offline 2^15" true
    (near ~got:(Hotplug.offline_cost_model ~isa:Node_id.X86 ~pages:(1 lsl 15)) ~want:12.5);
  Alcotest.(check bool) "x86 offline 2^20" true
    (near ~got:(Hotplug.offline_cost_model ~isa:Node_id.X86 ~pages:(1 lsl 20)) ~want:246.3);
  Alcotest.(check bool) "arm offline 2^20" true
    (near ~got:(Hotplug.offline_cost_model ~isa:Node_id.Arm ~pages:(1 lsl 20)) ~want:64.4);
  Alcotest.(check bool) "arm online 2^20" true
    (near ~got:(Hotplug.online_cost_model ~isa:Node_id.Arm ~pages:(1 lsl 20)) ~want:80.9);
  Alcotest.(check bool) "x86 offline dearer than arm" true
    (Hotplug.offline_cost_model ~isa:Node_id.X86 ~pages:65536
    > Hotplug.offline_cost_model ~isa:Node_id.Arm ~pages:65536)

let test_hotplug_roundtrip () =
  let fa = Frame_alloc.create ~name:"t" in
  let rng = Rng.create ~seed:4L in
  let r = region 0 1024 in
  let on = Hotplug.online fa r ~isa:Node_id.Arm ~rng in
  checki "pages onlined" 1024 on.Hotplug.pages;
  checki "frames available" 1024 (Frame_alloc.total_frames fa);
  let frame = Frame_alloc.alloc_exn fa in
  Alcotest.(check bool) "offline refused while in use" true
    (Result.is_error (Hotplug.offline fa r ~isa:Node_id.Arm ~rng));
  Frame_alloc.free fa frame;
  Alcotest.(check bool) "offline ok when evacuated" true
    (Result.is_ok (Hotplug.offline fa r ~isa:Node_id.Arm ~rng))

(* ---------- Namespace ---------- *)

let test_namespaces () =
  let a = Namespace.fresh_set () in
  let b = Namespace.fresh_set () in
  Alcotest.(check bool) "fresh sets differ" false (Namespace.same_view a b);
  let fused = Namespace.fuse a in
  Alcotest.(check bool) "fused view equal" true (Namespace.same_view a fused);
  checki "cpu list covers both nodes" 8 (List.length (Namespace.fused_cpu_list ~cores_per_node:4))

(* ---------- Kernel boot ---------- *)

let test_kernel_boot () =
  let phys = Phys_mem.create () in
  let k = Kernel.boot ~node:Node_id.Arm ~phys in
  let frame = Kernel.alloc_frame_exn k in
  Alcotest.(check bool) "frames come from the private region" true
    (Layout.region_contains (Layout.private_region Node_id.Arm) frame);
  Alcotest.(check bool) "kernel owns its frame" true (Kernel.owns k frame);
  Alcotest.(check bool) "does not own the pool" false (Kernel.owns k (Addr.gib 5));
  let table = Kernel.alloc_table_page k in
  Alcotest.(check int64) "table pages are zeroed" 0L (Phys_mem.read_u64 phys table)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_rbtree_model; prop_pte_roundtrip ]

let () =
  Alcotest.run "kernel"
    [
      ( "rbtree",
        [
          Alcotest.test_case "basic" `Quick test_rbtree_basic;
          Alcotest.test_case "floor" `Quick test_rbtree_floor;
          Alcotest.test_case "remove" `Quick test_rbtree_remove;
          Alcotest.test_case "sorted iter" `Quick test_rbtree_iter_sorted;
          Alcotest.test_case "visit path" `Quick test_rbtree_visit_counts_path;
        ] );
      ( "pte",
        [
          Alcotest.test_case "formats differ" `Quick test_pte_formats_differ;
          Alcotest.test_case "not present" `Quick test_pte_not_present;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "map/walk/unmap" `Quick test_page_table_map_walk;
          Alcotest.test_case "walk charges 5 levels" `Quick test_page_table_walk_charges_five_levels;
          Alcotest.test_case "upper levels" `Quick test_page_table_upper_levels;
          Alcotest.test_case "update flags" `Quick test_page_table_update_flags;
        ] );
      ("tlb", [ Alcotest.test_case "basic" `Quick test_tlb ]);
      ( "frame_alloc",
        [
          Alcotest.test_case "alloc/free" `Quick test_frame_alloc;
          Alcotest.test_case "exhaustion" `Quick test_frame_alloc_exhaustion;
          Alcotest.test_case "remove region" `Quick test_frame_alloc_remove_region;
        ] );
      ("kheap", [ Alcotest.test_case "alignment" `Quick test_kheap_alignment ]);
      ("vma", [ Alcotest.test_case "basic" `Quick test_vma ]);
      ("futex", [ Alcotest.test_case "buckets" `Quick test_futex_buckets ]);
      ( "hotplug",
        [
          Alcotest.test_case "table 4 calibration" `Quick test_hotplug_cost_model;
          Alcotest.test_case "roundtrip" `Quick test_hotplug_roundtrip;
        ] );
      ("namespace", [ Alcotest.test_case "fuse" `Quick test_namespaces ]);
      ("kernel", [ Alcotest.test_case "boot" `Quick test_kernel_boot ]);
      ("properties", qsuite);
    ]
