(* End-to-end integrity: CRC32 framing, corruption-schedule validation,
   versioned checkpoint decode, the fingerprint store's
   inject/detect/repair cycle, and the scrub campaign. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Vma = Stramash_kernel.Vma
module Plan = Stramash_fault_inject.Plan
module Integrity = Stramash_fault_inject.Integrity
module Checkpoint = Stramash_core.Checkpoint
module IE = Stramash_harness.Integrity_experiments

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- CRC32 ---------- *)

let test_crc_vectors () =
  (* IEEE 802.3 check value, plus a couple of independent fixtures. *)
  checki "check value" 0xCBF43926 (Integrity.crc32_string "123456789");
  checki "empty string" 0 (Integrity.crc32_string "");
  checki "single a" 0xE8B7BE43 (Integrity.crc32_string "a");
  checkb "prefix-sensitive" true
    (Integrity.crc32_string "stramash" <> Integrity.crc32_string "stramash ")

let test_crc_page_matches_raw_bytes () =
  let phys = Phys_mem.create () in
  let frame = 1000 * Addr.page_size in
  for w = 0 to 511 do
    Phys_mem.write_u64 phys (frame + (8 * w)) (Int64.of_int ((w * 2654435761) land 0xFFFFFF))
  done;
  let raw = Bytes.create Addr.page_size in
  for i = 0 to Addr.page_size - 1 do
    Bytes.set raw i (Char.chr (Phys_mem.read_u8 phys (frame + i)))
  done;
  checki "page CRC equals raw-byte CRC"
    (Integrity.crc32_string (Bytes.to_string raw))
    (Integrity.crc32_page phys ~frame);
  let before = Integrity.crc32_page phys ~frame in
  Phys_mem.write_u8 phys (frame + 123) (Phys_mem.read_u8 phys (frame + 123) lxor 1);
  checkb "one flipped bit changes the page CRC" true
    (before <> Integrity.crc32_page phys ~frame)

(* ---------- Plan.validate on corruption schedules ---------- *)

let flip ?(at = 100) ?(node = 0) ?(bits = 1) () =
  { Plan.bf_at = at; bf_node = node; bf_bits = bits }

let sw start len = { Plan.sw_start = start; sw_len = len }

let expect_invalid label config =
  match Plan.validate config with
  | Ok () -> Alcotest.failf "%s: validate accepted a malformed config" label
  | Error _ -> ()

let test_validate_rejects_malformed () =
  expect_invalid "zero-bit flip" { Plan.default with corrupt_flips = [ flip ~bits:0 () ] };
  expect_invalid "nine-bit flip (silent flips live in one byte)"
    { Plan.default with corrupt_flips = [ flip ~bits:9 () ] };
  expect_invalid "negative flip time" { Plan.default with corrupt_flips = [ flip ~at:(-1) () ] };
  expect_invalid "node index out of range"
    { Plan.default with corrupt_flips = [ flip ~node:2 () ] };
  expect_invalid "negative node index"
    { Plan.default with corrupt_flips = [ flip ~node:(-1) () ] };
  expect_invalid "msg rate > 1" { Plan.default with corrupt_msg_rate = 1.5 };
  expect_invalid "negative truncate rate" { Plan.default with corrupt_msg_truncate_rate = -0.1 };
  expect_invalid "ckpt rate > 1" { Plan.default with corrupt_ckpt_rate = 2.0 };
  expect_invalid "pte rate < 0" { Plan.default with corrupt_pte_rate = -1.0 };
  expect_invalid "overlapping scrub windows"
    { Plan.default with scrub_windows = [ sw 100 1000; sw 500 100 ] };
  expect_invalid "zero-length scrub window" { Plan.default with scrub_windows = [ sw 100 0 ] };
  expect_invalid "zero scrub interval" { Plan.default with scrub_interval_cycles = 0 };
  expect_invalid "zero scrub budget" { Plan.default with scrub_pages_per_epoch = 0 }

let test_validate_accepts_sane () =
  checkb "flips at both bounds" true
    (Plan.validate
       { Plan.default with corrupt_flips = [ flip ~bits:1 (); flip ~bits:8 ~node:1 () ] }
    = Ok ());
  checkb "adjacent scrub windows" true
    (Plan.validate { Plan.default with scrub_windows = [ sw 100 400; sw 500 100 ] } = Ok ());
  checkb "campaign probe config" true
    (Plan.validate
       (IE.probe_config ~flips:IE.default_flips ~msg_rate:IE.default_msg_rate
          ~pte_rate:IE.default_pte_rate)
    = Ok ());
  checkb "create raises on malformed" true
    (match
       Plan.create ~seed:1L { Plan.default with corrupt_flips = [ flip ~bits:0 () ] }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- checkpoint v2 framing ---------- *)

let sample_image =
  {
    Checkpoint.node = Node_id.X86;
    procs =
      [
        {
          Checkpoint.pid = 1;
          vmas =
            [
              { Checkpoint.v_start = 0x1000; v_end = 0x5000; v_kind = Vma.Data; v_writable = true };
              {
                Checkpoint.v_start = 0x8000;
                v_end = 0x9000;
                v_kind = Vma.Stack;
                v_writable = true;
              };
            ];
          ptes =
            [
              { Checkpoint.p_vaddr = 0x1000; p_frame = 7; p_writable = true; p_remote_owned = false };
              { Checkpoint.p_vaddr = 0x2000; p_frame = 9; p_writable = false; p_remote_owned = true };
            ];
        };
      ];
    futexes = [ { Checkpoint.f_home = Node_id.Arm; f_uaddr = 0x4000; f_tid = 3 } ];
  }

let test_roundtrip () =
  match Checkpoint.decode (Checkpoint.encode sample_image) with
  | Ok image -> checkb "image survives the round trip" true (image = sample_image)
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Checkpoint.decode_error_to_string e)

let test_typed_decode_errors () =
  let blob = Checkpoint.encode sample_image in
  (match Checkpoint.decode "" with
  | Error Checkpoint.Bad_magic -> ()
  | _ -> Alcotest.fail "empty blob should be Bad_magic");
  (match Checkpoint.decode "some other file format\nbody" with
  | Error Checkpoint.Bad_magic -> ()
  | _ -> Alcotest.fail "foreign blob should be Bad_magic");
  (match Checkpoint.decode "stramash-checkpoint v1 10 deadbeef\nbody" with
  | Error (Checkpoint.Unsupported_version "v1") -> ()
  | _ -> Alcotest.fail "v1 header should be Unsupported_version");
  (match Checkpoint.decode "stramash-checkpoint" with
  | Error (Checkpoint.Unsupported_version _) -> ()
  | _ -> Alcotest.fail "bare magic should be Unsupported_version");
  (* Tear the tail off: fewer body bytes than the header promises. *)
  (match Checkpoint.decode (String.sub blob 0 (String.length blob - 5)) with
  | Error (Checkpoint.Truncated { expected; got }) ->
      checkb "truncation accounted" true (got < expected)
  | _ -> Alcotest.fail "torn blob should be Truncated");
  (* Flip one body byte: right length, wrong CRC. *)
  (let header_end = String.index blob '\n' + 1 in
   let rotted = Bytes.of_string blob in
   Bytes.set rotted header_end (Char.chr (Char.code (Bytes.get rotted header_end) lxor 0x40));
   match Checkpoint.decode (Bytes.to_string rotted) with
   | Error (Checkpoint.Checksum_mismatch _) -> ()
   | _ -> Alcotest.fail "bit rot should be Checksum_mismatch");
  (* A well-framed header over a nonsense body: checks pass, parse fails. *)
  let body = "node x86\nnot a record\n" in
  let framed =
    Printf.sprintf "stramash-checkpoint v2 %d %08x\n%s" (String.length body)
      (Integrity.crc32_string body) body
  in
  match Checkpoint.decode framed with
  | Error (Checkpoint.Malformed _) -> ()
  | _ -> Alcotest.fail "framed garbage should be Malformed"

(* Every strict prefix of a valid blob decodes to a typed error — never
   [Ok], never an exception. The prefix grammar covers torn headers, torn
   length fields and torn bodies in one sweep. *)
let prop_prefixes_never_decode =
  QCheck.Test.make ~name:"random prefix of a checkpoint never decodes" ~count:200
    QCheck.(int_range 0 10_000)
    (fun salt ->
      let image =
        {
          sample_image with
          Checkpoint.procs =
            List.map
              (fun p ->
                {
                  p with
                  Checkpoint.ptes =
                    List.map
                      (fun pte -> { pte with Checkpoint.p_frame = pte.Checkpoint.p_frame + salt })
                      p.Checkpoint.ptes;
                })
              sample_image.Checkpoint.procs;
        }
      in
      let blob = Checkpoint.encode image in
      let ok = ref true in
      for n = 0 to String.length blob - 1 do
        match Checkpoint.decode (String.sub blob 0 n) with
        | Ok _ ->
            ok := false (* a strict prefix must never pass the framing *)
        | Error _ -> ()
        | exception e ->
            ignore (QCheck.Test.fail_reportf "prefix %d raised %s" n (Printexc.to_string e))
      done;
      !ok)

(* ---------- the fingerprint store ---------- *)

let page n = n * Addr.page_size

let fill phys ~frame ~seed =
  for w = 0 to 511 do
    Phys_mem.write_u64 phys (frame + (8 * w)) (Int64.of_int ((seed + w) * 1103515245))
  done

let make_store ?(flips = []) ?(scrub = true) ?(windows = []) ?(interval = 10) ?(budget = 64) ()
    =
  Integrity.create ~rng:(Rng.create ~seed:42L) ~metrics:(Metrics.registry ()) ~flips ~scrub
    ~windows ~interval ~budget

let pair_frames st phys a b =
  fill phys ~frame:a ~seed:7;
  Phys_mem.copy_page phys ~src:a ~dst:b;
  Integrity.pair st phys ~home:a ~home_node:Node_id.X86 ~replica:b ~replica_node:Node_id.Arm

let test_pair_seal_and_audit () =
  let phys = Phys_mem.create () in
  let st = make_store () in
  checki "empty store tracks nothing" 0 (Integrity.tracked st);
  pair_frames st phys (page 10) (page 11);
  checki "a pair seals both frames" 2 (Integrity.tracked st);
  checkb "clean pair audits clean" true (Integrity.audit_clean st phys);
  Phys_mem.write_u8 phys (page 10 + 5) 0xFF;
  checkb "manual damage fails the audit" false (Integrity.audit_clean st phys);
  Integrity.unpair st ~home:(page 10) ~replica:(page 11);
  checki "unpair forgets both" 0 (Integrity.tracked st)

let test_inject_detect_repair_cycle () =
  let phys = Phys_mem.create () in
  (* The interval is wide enough that the sweep repairing the flip runs
     a later tick than the injection, so a real exposure window opens. *)
  let st = make_store ~flips:[ (100, 0, 2) ] ~interval:150 () in
  pair_frames st phys (page 20) (page 21);
  checki "event still queued before its time" 1 (Integrity.flips_outstanding st);
  let s0 = Integrity.tick st phys ~now:50 in
  checki "nothing lands early" 0 s0.Integrity.ts_flips;
  let s1 = Integrity.tick st phys ~now:100 in
  checki "flip lands when due" 1 s1.Integrity.ts_flips;
  checki "event consumed" 0 (Integrity.flips_outstanding st);
  (* The sweep of a later tick (budget covers the whole roster) finds
     and heals it. *)
  let s2 = Integrity.tick st phys ~now:300 in
  let repairs = List.length s1.Integrity.ts_repairs + List.length s2.Integrity.ts_repairs in
  checki "exactly one repair" 1 repairs;
  checki "no corruption left pending" 0 (Integrity.pending_count st);
  checkb "repair restored the twin bytes" true
    (Integrity.crc32_page phys ~frame:(page 20) = Integrity.crc32_page phys ~frame:(page 21));
  checkb "audits clean after repair" true (Integrity.audit_clean st phys);
  checkb "exposure window recorded" true (Integrity.max_exposure_cycles st > 0)

let test_flip_waits_for_an_eligible_victim () =
  let phys = Phys_mem.create () in
  let st = make_store ~flips:[ (10, 0, 1) ] () in
  let s = Integrity.tick st phys ~now:50 in
  checki "no roster, nothing lands" 0 s.Integrity.ts_flips;
  checki "the event is retained, not dropped" 1 (Integrity.flips_outstanding st);
  pair_frames st phys (page 30) (page 31);
  let s2 = Integrity.tick st phys ~now:60 in
  checki "lands once a pair exists" 1 s2.Integrity.ts_flips

let test_check_pair_choke_point () =
  let phys = Phys_mem.create () in
  let st = make_store ~flips:[ (10, 1, 1) ] ~scrub:false () in
  pair_frames st phys (page 40) (page 41);
  ignore (Integrity.tick st phys ~now:10);
  checki "scrubber off: damage stays latent" 1 (Integrity.pending_count st);
  let s = Integrity.check_pair st phys ~home:(page 40) ~replica:(page 41) ~now:999 in
  checki "the dissolution check repairs it" 1 (List.length s.Integrity.ts_repairs);
  checkb "bytes identical again" true
    (Integrity.crc32_page phys ~frame:(page 40) = Integrity.crc32_page phys ~frame:(page 41))

let test_sweep_all_and_unrepaired () =
  let phys = Phys_mem.create () in
  let st = make_store ~flips:[ (10, 0, 1) ] ~scrub:false () in
  pair_frames st phys (page 50) (page 51);
  ignore (Integrity.tick st phys ~now:10);
  let s = Integrity.sweep_all st phys ~now:100 in
  checki "shutdown sweep verifies the whole roster" 2 s.Integrity.ts_scanned;
  checki "and repairs the latent flip" 1 (List.length s.Integrity.ts_repairs);
  (* Damage both sides by hand: no clean twin remains, so the sweep can
     only report the loss. *)
  Phys_mem.write_u8 phys (page 50 + 9) 0xAA;
  Phys_mem.write_u8 phys (page 51 + 9) 0x55;
  let s2 = Integrity.sweep_all st phys ~now:200 in
  checkb "double damage is unrepairable" true (s2.Integrity.ts_unrepaired > 0);
  checkb "audit refuses the wreckage" false (Integrity.audit_clean st phys)

(* Flips are *silent* by construction: confined to the low byte of one
   aligned word, so a corrupt value can drift by at most 255 and an index
   or pointer read from the page cannot leave its mapped range. *)
let test_flips_are_low_byte_only () =
  let phys = Phys_mem.create () in
  let st =
    make_store ~flips:(List.init 32 (fun i -> (10 + i, i mod 2, 8))) ~scrub:false ()
  in
  let a = page 60 and b = page 61 in
  pair_frames st phys a b;
  let snapshot frame =
    Array.init 512 (fun w -> Phys_mem.read_u64 phys (frame + (8 * w)))
  in
  let wa = snapshot a and wb = snapshot b in
  for now = 10 to 60 do
    ignore (Integrity.tick st phys ~now)
  done;
  let check_drift frame orig =
    let now = snapshot frame in
    Array.iteri
      (fun w v ->
        let diff = Int64.logxor v now.(w) in
        checkb
          (Printf.sprintf "frame 0x%x word %d damage confined to the low byte" frame w)
          true
          (Int64.logand diff (Int64.lognot 0xFFL) = 0L))
      orig
  in
  check_drift a wa;
  check_drift b wb

(* ---------- unarmed plans stay inert ---------- *)

let test_unarmed_is_inert () =
  let plan = Plan.create ~seed:5L Plan.default in
  checkb "default plan not corruption-armed" false (Plan.corruption_armed plan);
  checkb "no integrity store" true (Plan.integrity plan = None);
  checkb "messages pass clean" true (Plan.msg_corrupt_verdict plan = `Clean);
  checkb "installs never stale" false (Plan.pte_corrupted plan);
  checkb "checkpoints never torn" true (Plan.ckpt_torn_fraction plan = None);
  checki "no corruption injected" 0 (Plan.corruption_injected plan);
  (* Scrub-only plans get the store (detection machinery) without arming
     any injection. *)
  let scrub_only = Plan.create ~seed:5L { Plan.default with scrub_enabled = true } in
  checkb "scrubber alone does not arm injection" false (Plan.corruption_armed scrub_only);
  checkb "but builds the store" true (Plan.integrity scrub_only <> None)

(* Arming a corruption schedule must not perturb the pre-existing fault
   streams: the corrupt stream is split from the seed *after* every other
   site, so the same drop/walk decisions come out with and without it. *)
let test_corruption_stream_does_not_perturb_base_sites () =
  let base = { Plan.default with msg_drop_rate = 0.3; walk_fail_rate = 0.2 } in
  let armed =
    {
      base with
      corrupt_flips = [ flip () ];
      corrupt_msg_rate = 0.5;
      corrupt_pte_rate = 0.5;
      scrub_enabled = true;
    }
  in
  let draw plan = List.init 300 (fun _ -> (Plan.msg_attempt plan, Plan.walk_read_faulted plan)) in
  checkb "base streams identical under corruption arming" true
    (draw (Plan.create ~seed:5L base) = draw (Plan.create ~seed:5L armed))

(* ---------- campaign ---------- *)

let test_campaign_unknown_bench () =
  let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  checkb "unknown bench" true (IE.campaign fmt ~bench:"nope" () = IE.Unknown_bench)

let test_campaign_clean_and_deterministic () =
  let run () =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let verdict = IE.campaign fmt ~bench:"is" ~kills:1 () in
    Format.pp_print_flush fmt ();
    (verdict, Buffer.contents buf)
  in
  let v1, out1 = run () in
  let v2, out2 = run () in
  checkb "clean" true (v1 = IE.Clean);
  checkb "replay clean" true (v2 = IE.Clean);
  checkb "same seed, byte-identical output" true (out1 = out2)

let test_exit_codes () =
  checki "clean" 0 (IE.exit_code IE.Clean);
  checki "violations" 1 (IE.exit_code IE.Violations);
  checki "unrecovered" 1 (IE.exit_code IE.Unrecovered);
  checki "unknown" 2 (IE.exit_code IE.Unknown_bench)

let () =
  Alcotest.run "integrity"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_vectors;
          Alcotest.test_case "page CRC matches raw bytes" `Quick test_crc_page_matches_raw_bytes;
        ] );
      ( "validate",
        [
          Alcotest.test_case "rejects malformed" `Quick test_validate_rejects_malformed;
          Alcotest.test_case "accepts sane" `Quick test_validate_accepts_sane;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "typed decode errors" `Quick test_typed_decode_errors;
          QCheck_alcotest.to_alcotest prop_prefixes_never_decode;
        ] );
      ( "store",
        [
          Alcotest.test_case "pair, seal, audit" `Quick test_pair_seal_and_audit;
          Alcotest.test_case "inject/detect/repair cycle" `Quick test_inject_detect_repair_cycle;
          Alcotest.test_case "flip waits for a victim" `Quick
            test_flip_waits_for_an_eligible_victim;
          Alcotest.test_case "check_pair choke point" `Quick test_check_pair_choke_point;
          Alcotest.test_case "sweep_all + unrepaired" `Quick test_sweep_all_and_unrepaired;
          Alcotest.test_case "flips stay in the low byte" `Quick test_flips_are_low_byte_only;
        ] );
      ( "inert",
        [
          Alcotest.test_case "unarmed is inert" `Quick test_unarmed_is_inert;
          Alcotest.test_case "base streams unperturbed" `Quick
            test_corruption_stream_does_not_perturb_base_sites;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "unknown bench" `Quick test_campaign_unknown_bench;
          Alcotest.test_case "clean + deterministic" `Slow test_campaign_clean_and_deterministic;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
