(* Gray-failure resilience: plan validation, slow-down/flap/stall
   schedules, health scoring + circuit breakers, and the breaker-on/off
   campaign. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Plan = Stramash_fault_inject.Plan
module Health = Stramash_fault_inject.Health
module GE = Stramash_harness.Gray_experiments

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let window ?(node = Node_id.X86) ?(start = 100) ?(len = 1000) ?(factor = 2.0) () =
  { Plan.g_node = node; g_start = start; g_len = len; g_factor = factor }

(* ---------- Plan.validate ---------- *)

let expect_invalid label config =
  match Plan.validate config with
  | Ok () -> Alcotest.failf "%s: validate accepted a malformed config" label
  | Error _ -> ()

let test_validate_rejects_malformed () =
  expect_invalid "factor < 1" { Plan.default with gray_slow = [ window ~factor:0.9 () ] };
  expect_invalid "zero-length window" { Plan.default with gray_slow = [ window ~len:0 () ] };
  expect_invalid "overlapping windows on one node"
    {
      Plan.default with
      gray_slow = [ window ~start:100 ~len:1000 (); window ~start:500 ~len:100 () ];
    };
  expect_invalid "dup rate > 1" { Plan.default with msg_dup_rate = 1.5 };
  expect_invalid "negative reorder cycles" { Plan.default with msg_reorder_cycles = -1 };
  expect_invalid "alpha out of range" { Plan.default with health_alpha = 0.0 };
  expect_invalid "trip score out of range" { Plan.default with breaker_trip_score = 1.0 };
  expect_invalid "jitter out of range" { Plan.default with backoff_jitter = 1.0 };
  expect_invalid "timeout mult < 1" { Plan.default with adaptive_timeout_mult = 0.5 };
  expect_invalid "readmit probes < 1" { Plan.default with breaker_readmit_probes = 0 };
  expect_invalid "flap drop rate" {
    Plan.default with
    gray_flaps = [ { Plan.fl_start = 1; fl_len = 10; fl_drop_rate = 2.0; fl_delay_cycles = 0 } ];
  };
  expect_invalid "stall cycles < 0" {
    Plan.default with
    gray_ptl_stalls = [ { Plan.st_start = 1; st_len = 10; st_stall_cycles = -5 } ];
  }

let test_validate_accepts_sane () =
  checkb "default is valid" true (Plan.validate Plan.default = Ok ());
  checkb "adjacent windows on one node are fine" true
    (Plan.validate
       {
         Plan.default with
         gray_slow = [ window ~start:100 ~len:400 (); window ~start:500 ~len:100 () ];
       }
    = Ok ());
  checkb "same span on different nodes is fine" true
    (Plan.validate
       {
         Plan.default with
         gray_slow =
           [ window ~node:Node_id.X86 (); window ~node:Node_id.Arm () ];
       }
    = Ok ());
  checkb "create raises on malformed" true
    (match Plan.create ~seed:1L { Plan.default with msg_dup_rate = -0.1 } with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- schedules ---------- *)

let test_slow_window_inflation () =
  let plan =
    Plan.create ~seed:7L
      { Plan.default with gray_slow = [ window ~start:100 ~len:1000 ~factor:3.0 () ] }
  in
  checkb "armed" true (Plan.gray_armed plan);
  checki "before the window" 0 (Plan.inflate plan ~node:Node_id.X86 ~now:99 ~cycles:200);
  checki "inside: (factor-1) x cycles" 400
    (Plan.inflate plan ~node:Node_id.X86 ~now:100 ~cycles:200);
  checki "window end is exclusive" 0 (Plan.inflate plan ~node:Node_id.X86 ~now:1100 ~cycles:200);
  checki "other node untouched" 0 (Plan.inflate plan ~node:Node_id.Arm ~now:500 ~cycles:200);
  checki "inflated cycles counted" 400
    (Metrics.get (Plan.metrics plan) "gray.inflated_cycles")

let test_ptl_stall_window () =
  let plan =
    Plan.create ~seed:7L
      {
        Plan.default with
        gray_ptl_stalls = [ { Plan.st_start = 50; st_len = 100; st_stall_cycles = 777 } ];
      }
  in
  checki "outside" 0 (Plan.ptl_stall_extra plan ~now:49);
  checki "inside" 777 (Plan.ptl_stall_extra plan ~now:50);
  checki "after" 0 (Plan.ptl_stall_extra plan ~now:150)

let test_flap_burst_drops_and_delays () =
  let burst =
    { Plan.fl_start = 1000; fl_len = 1000; fl_drop_rate = 1.0; fl_delay_cycles = 333 }
  in
  let plan = Plan.create ~seed:7L { Plan.default with gray_flaps = [ burst ] } in
  checkb "outside the burst delivers" true
    (match Plan.msg_attempt_at plan ~now:1 with `Deliver 0 -> true | _ -> false);
  checkb "inside a certain burst drops" true (Plan.msg_attempt_at plan ~now:1500 = `Drop);
  let delay_only = { burst with fl_drop_rate = 0.0 } in
  let plan2 = Plan.create ~seed:7L { Plan.default with gray_flaps = [ delay_only ] } in
  checkb "delay-only burst adds the burst delay" true
    (match Plan.msg_attempt_at plan2 ~now:1500 with `Deliver d -> d >= 333 | `Drop -> false)

(* Same seed, same config: the gray decision stream replays identically. *)
let test_gray_determinism () =
  let config =
    {
      Plan.default with
      gray_flaps =
        [ { Plan.fl_start = 0; fl_len = 10_000; fl_drop_rate = 0.4; fl_delay_cycles = 7 } ];
      msg_dup_rate = 0.3;
      msg_reorder_rate = 0.3;
      msg_reorder_cycles = 11;
    }
  in
  let draw plan =
    List.init 200 (fun i ->
        ( Plan.msg_attempt_at plan ~now:i,
          Plan.msg_duplicated plan,
          Plan.msg_reorder_extra plan ))
  in
  let a = draw (Plan.create ~seed:99L config) in
  let b = draw (Plan.create ~seed:99L config) in
  checkb "identical decision streams" true (a = b);
  let c = draw (Plan.create ~seed:100L config) in
  checkb "different seed diverges" true (a <> c)

(* Arming a gray schedule must not perturb the original five fault
   streams: the same drop decisions come out with and without it. *)
let test_gray_streams_do_not_perturb_base_sites () =
  let base = { Plan.default with msg_drop_rate = 0.3; walk_fail_rate = 0.2 } in
  let armed = { base with gray_slow = [ window () ]; msg_dup_rate = 0.5 } in
  let draw plan = List.init 300 (fun _ -> (Plan.msg_attempt plan, Plan.walk_read_faulted plan)) in
  checkb "base streams identical under gray arming" true
    (draw (Plan.create ~seed:5L base) = draw (Plan.create ~seed:5L armed))

(* An unarmed plan keeps all gray machinery dormant. *)
let test_unarmed_is_inert () =
  let plan = Plan.create ~seed:5L Plan.default in
  checkb "not armed" false (Plan.gray_armed plan);
  checkb "no health" true (Plan.health plan = None);
  checkb "route is fused" true (Plan.breaker_route plan ~peer:Node_id.X86 ~now:0 = `Fused);
  checki "no op histograms" 0 (List.length (Plan.op_histograms plan));
  Plan.record_op plan ~op:"fault" ~cycles:100;
  checki "record_op is a no-op" 0 (List.length (Plan.op_histograms plan));
  checkb "health_enabled alone does not arm" true
    (Plan.health (Plan.create ~seed:5L { Plan.default with health_enabled = true }) = None)

(* ---------- health scoring + breaker ---------- *)

let health_params =
  {
    Health.alpha = 0.3;
    trip_score = 0.55;
    probe_interval = 1000;
    readmit_probes = 2;
    backoff_jitter = 0.25;
    adaptive_timeout_mult = 4.0;
  }

let make_health ?(params = health_params) () =
  Health.create ~rng:(Rng.create ~seed:11L) ~metrics:(Metrics.registry ()) params

let peer = Node_id.Arm

let test_health_score_and_trip () =
  let h = make_health () in
  checkb "fresh peer is healthy" true (Health.score h ~peer = 1.0);
  checkb "fresh breaker closed" true (Health.breaker_state h ~peer = Health.Closed);
  Health.observe_service h ~peer ~cycles:100 ~nominal:100 ~now:0;
  checkb "nominal service keeps it closed" true (Health.breaker_state h ~peer = Health.Closed);
  Health.observe_service h ~peer ~cycles:5000 ~nominal:100 ~now:10;
  checkb "gross slow-down trips the breaker" true (Health.breaker_state h ~peer = Health.Open);
  checkb "score collapsed" true (Health.score h ~peer < 0.55)

let test_failures_trip_breaker () =
  let h = make_health () in
  for i = 1 to 10 do
    Health.observe_failure h ~peer ~now:i
  done;
  checkb "repeated failures trip" true (Health.breaker_state h ~peer = Health.Open)

let test_route_paces_probes () =
  let h = make_health () in
  Health.observe_service h ~peer ~cycles:5000 ~nominal:100 ~now:0;
  checkb "tripped" true (Health.breaker_state h ~peer = Health.Open);
  checkb "diverts immediately after the trip" true (Health.route h ~peer ~now:10 = `Divert);
  checkb "probe released after the interval" true (Health.route h ~peer ~now:1001 = `Probe);
  checkb "next call diverts again (pacing)" true (Health.route h ~peer ~now:1002 = `Divert);
  checkb "healthy peer stays fused" true (Health.route h ~peer:Node_id.X86 ~now:0 = `Fused)

let test_probe_hysteresis_and_readmission () =
  let h = make_health () in
  Health.observe_service h ~peer ~cycles:5000 ~nominal:100 ~now:0;
  (* One good probe is not enough, even once the score recovers: the
     breaker demands [readmit_probes] consecutive passes above the
     raised re-admission bar. *)
  let probe now =
    (* each probe contributes healthy observations, decaying the ratio *)
    Health.observe_service h ~peer ~cycles:100 ~nominal:100 ~now;
    Health.observe_service h ~peer ~cycles:100 ~nominal:100 ~now;
    Health.probe_done h ~peer ~now
  in
  checkb "readmission bar above trip score" true
    (Health.readmit_score h > health_params.Health.trip_score);
  let rec heal now guard =
    if Health.breaker_state h ~peer = Health.Closed then now
    else if guard = 0 then Alcotest.fail "breaker never re-closed"
    else begin
      probe now;
      heal (now + 1000) (guard - 1)
    end
  in
  let closed_at = heal 1000 40 in
  checkb "needed more than one probe" true (closed_at > 2000);
  checkb "closed in the end" true (Health.breaker_state h ~peer = Health.Closed)

let test_failed_probe_reopens () =
  let h = make_health () in
  Health.observe_service h ~peer ~cycles:5000 ~nominal:100 ~now:0;
  (* Heal the score enough to pass one probe... *)
  let rec pump n now =
    if n = 0 then now
    else begin
      Health.observe_service h ~peer ~cycles:100 ~nominal:100 ~now;
      pump (n - 1) (now + 10)
    end
  in
  let now = pump 20 10 in
  Health.probe_done h ~peer ~now;
  checkb "first pass goes half-open" true (Health.breaker_state h ~peer = Health.Half_open);
  (* ...then a bad probe slams it back open and resets the streak. *)
  Health.observe_service h ~peer ~cycles:8000 ~nominal:100 ~now:(now + 10);
  Health.probe_done h ~peer ~now:(now + 10);
  checkb "failed probe reopens" true (Health.breaker_state h ~peer = Health.Open)

let test_adaptive_timeout_and_backoff () =
  let h = make_health () in
  checki "default until first sample" 42
    (Health.adaptive_timeout h ~peer ~floor:1 ~cap:1000 ~default:42);
  Health.observe_msg_rtt h ~peer ~cycles:100 ~nominal:100 ~now:0;
  checki "mult x rtt ewma" 400 (Health.adaptive_timeout h ~peer ~floor:1 ~cap:1000 ~default:42);
  checki "cap clamps" 250 (Health.adaptive_timeout h ~peer ~floor:1 ~cap:250 ~default:42);
  checki "floor clamps" 600 (Health.adaptive_timeout h ~peer ~floor:600 ~cap:1000 ~default:42);
  (* Jittered exponential backoff stays within the jitter envelope and
     grows with the attempt index. *)
  let base = 100 in
  let timeout = Health.adaptive_timeout h ~peer ~floor:1 ~cap:10_000 ~default:42 in
  for attempt = 0 to 4 do
    for _ = 1 to 50 do
      let b = Health.backoff h ~peer ~attempt ~base ~floor:1 ~cap:10_000 ~default:42 in
      let exp = timeout + (base * (1 lsl attempt)) in
      let jitter = health_params.Health.backoff_jitter *. float_of_int exp in
      checkb
        (Printf.sprintf "attempt %d backoff %d within envelope of %d" attempt b exp)
        true
        (float_of_int (abs (b - exp)) <= jitter +. 1.0)
    done
  done

let test_plan_backoff_matches_legacy_when_unarmed () =
  let config = { Plan.default with msg_drop_rate = 0.5 } in
  let plan = Plan.create ~seed:3L config in
  List.iter
    (fun attempt ->
      checki
        (Printf.sprintf "attempt %d" attempt)
        (Plan.msg_backoff plan ~attempt)
        (Plan.msg_backoff_for plan ~peer:Node_id.X86 ~attempt))
    [ 0; 1; 2; 3 ]

(* ---------- campaign ---------- *)

let test_campaign_unknown_bench () =
  let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  checkb "unknown bench" true (GE.campaign fmt ~bench:"nope" () = GE.Unknown_bench)

let test_campaign_clean_and_deterministic () =
  let run () =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let verdict = GE.campaign fmt ~seed:0x6EA1L ~bench:"is" () in
    Format.pp_print_flush fmt ();
    (verdict, Buffer.contents buf)
  in
  let v1, out1 = run () in
  let v2, out2 = run () in
  checkb "clean" true (v1 = GE.Clean);
  checkb "replay clean" true (v2 = GE.Clean);
  checkb "same seed, byte-identical output" true (out1 = out2);
  checkb "breaker comparison rendered" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains out1 "breaker wins")

let test_exit_codes () =
  checki "clean" 0 (GE.exit_code GE.Clean);
  checki "violations" 1 (GE.exit_code GE.Violations);
  checki "unrecovered" 1 (GE.exit_code GE.Unrecovered);
  checki "unknown" 2 (GE.exit_code GE.Unknown_bench)

let () =
  Alcotest.run "gray"
    [
      ( "validate",
        [
          Alcotest.test_case "rejects malformed" `Quick test_validate_rejects_malformed;
          Alcotest.test_case "accepts sane" `Quick test_validate_accepts_sane;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "slow window inflation" `Quick test_slow_window_inflation;
          Alcotest.test_case "ptl stall window" `Quick test_ptl_stall_window;
          Alcotest.test_case "flap burst" `Quick test_flap_burst_drops_and_delays;
          Alcotest.test_case "determinism" `Quick test_gray_determinism;
          Alcotest.test_case "base streams unperturbed" `Quick
            test_gray_streams_do_not_perturb_base_sites;
          Alcotest.test_case "unarmed is inert" `Quick test_unarmed_is_inert;
        ] );
      ( "health",
        [
          Alcotest.test_case "score and trip" `Quick test_health_score_and_trip;
          Alcotest.test_case "failures trip" `Quick test_failures_trip_breaker;
          Alcotest.test_case "probe pacing" `Quick test_route_paces_probes;
          Alcotest.test_case "hysteresis readmission" `Quick
            test_probe_hysteresis_and_readmission;
          Alcotest.test_case "failed probe reopens" `Quick test_failed_probe_reopens;
          Alcotest.test_case "adaptive timeout + backoff" `Quick
            test_adaptive_timeout_and_backoff;
          Alcotest.test_case "unarmed backoff matches legacy" `Quick
            test_plan_backoff_matches_legacy_when_unarmed;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "unknown bench" `Quick test_campaign_unknown_bench;
          Alcotest.test_case "soak clean + deterministic" `Slow
            test_campaign_clean_and_deterministic;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
