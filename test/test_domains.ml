(* Determinism of multicore host execution: simulated results must be a
   pure function of the simulated configuration, never of how many host
   domains ran them. Covers 1-vs-N machine-level identity on NPB benches,
   byte-identical chaos-soak rendering across domain counts, and
   trace-cache on/off identity under a kill/restart plan (the
   checkpoint-restore invalidation path exercised at the machine layer). *)

module Node_id = Stramash_sim.Node_id
module Domain_pool = Stramash_sim.Domain_pool
module Cache_sim = Stramash_cache.Cache_sim
module Plan = Stramash_fault_inject.Plan
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads
module CE = Stramash_harness.Chaos_experiments

let checki = Alcotest.(check int)

let small_spec bench =
  match List.assoc_opt bench (W.Npb_suite.fig9_set ~small:true) with
  | Some spec -> spec
  | None -> Alcotest.failf "unknown bench %s" bench

(* One full simulated machine, reduced to the facts a replica must agree
   on: timing, work, traffic, and the workload's memory fingerprint. *)
let run_cell ~trace_cache bench () =
  let spec = small_spec bench in
  let machine =
    Machine.create { Machine.default_config with cache_mode = Cache_sim.Fast; trace_cache }
  in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  ( result.Runner.wall_cycles,
    result.Runner.instructions,
    result.Runner.messages,
    CE.checksum machine ~proc )

let test_domain_identity_npb () =
  let cells = Array.of_list [ "is"; "cg"; "is"; "cg" ] in
  let tasks = Array.map (fun bench -> run_cell ~trace_cache:true bench) cells in
  let sequential = Domain_pool.map ~domains:1 tasks in
  let parallel = Domain_pool.map ~domains:4 tasks in
  Array.iteri
    (fun i seq ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d (%s) identical across domain counts" i cells.(i))
        true
        (seq = parallel.(i)))
    sequential

let render_soak ~domains =
  let buf = Buffer.create 65536 in
  let fmt = Format.formatter_of_buffer buf in
  let verdict, cells = CE.soak fmt ~bench:"is" ~kills:2 ~cells:2 ~domains () in
  Format.pp_print_flush fmt ();
  (verdict, cells, Buffer.contents buf)

let test_soak_byte_identical () =
  let v1, c1, out1 = render_soak ~domains:1 in
  let v2, c2, out2 = render_soak ~domains:2 in
  Alcotest.(check string) "rendered soak byte-identical" out1 out2;
  Alcotest.(check bool) "per-cell verdicts identical" true (c1 = c2);
  Alcotest.(check string) "overall verdict identical" (CE.verdict_to_string v1)
    (CE.verdict_to_string v2);
  Alcotest.(check string) "soak is clean" "CLEAN" (CE.verdict_to_string v1)

(* The trace cache must stay invisible under chaos: a kill forces a
   restart from checkpoint, which flushes the victim's traces — the run
   must land on the same cycle count and fingerprint either way. *)
let test_tc_invisible_under_chaos () =
  let spec = small_spec "is" in
  let baseline = Machine.create { Machine.default_config with cache_mode = Cache_sim.Fast } in
  let bproc, bthread = Machine.load baseline spec in
  let bresult = Runner.run baseline bproc bthread spec in
  let origin = bproc.Stramash_kernel.Process.origin in
  let inject =
    Some
      {
        Plan.default with
        Plan.node_events =
          [ { Plan.node = origin; kill_at = bresult.Runner.wall_cycles / 2; restart_after = Some 20_000 } ];
      }
  in
  let run ~trace_cache =
    let machine =
      Machine.create
        { Machine.default_config with cache_mode = Cache_sim.Fast; inject; trace_cache }
    in
    let proc, thread = Machine.load machine spec in
    let result = Runner.run machine proc thread spec in
    (result.Runner.wall_cycles, result.Runner.instructions, CE.checksum machine ~proc)
  in
  let on_wall, on_instrs, on_sum = run ~trace_cache:true in
  let off_wall, off_instrs, off_sum = run ~trace_cache:false in
  checki "wall cycles identical under chaos" off_wall on_wall;
  checki "instructions identical under chaos" off_instrs on_instrs;
  Alcotest.(check bool) "checksum identical under chaos" true (on_sum = off_sum)

let () =
  Alcotest.run "domains"
    [
      ( "determinism",
        [
          Alcotest.test_case "1-vs-4-domain NPB identity" `Quick test_domain_identity_npb;
          Alcotest.test_case "soak renders byte-identical" `Quick test_soak_byte_identical;
          Alcotest.test_case "trace cache invisible under chaos" `Quick
            test_tc_invisible_under_chaos;
        ] );
    ]
