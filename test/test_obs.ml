(* Tests for the observability subsystem: span nesting and attribution
   arithmetic, ring overflow, Chrome-export determinism, probe chaining,
   and the end-to-end meter-agreement property on a traced run. *)

module Node_id = Stramash_sim.Node_id
module Metrics = Stramash_sim.Metrics
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Layout = Stramash_mem.Layout
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads
module Obs = Stramash_obs
module Trace = Stramash_obs.Trace
module Json = Stramash_obs.Json

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let find_row tracer ~subsys ~op =
  match
    List.find_opt
      (fun (r : Trace.row) -> r.Trace.subsys = subsys && r.Trace.op = op)
      (Trace.attribution tracer)
  with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no attribution row for %s/%s" subsys op)

(* ---------- span arithmetic ---------- *)

let test_span_nesting_arithmetic () =
  let t = Trace.create () in
  Trace.install t;
  let a = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  let b = Trace.span ~at:10 ~node:Node_id.X86 ~subsys:"s" ~op:"b" () in
  Trace.close ~at:30 b;
  Trace.close ~at:100 a;
  Trace.uninstall ();
  let ra = find_row t ~subsys:"s" ~op:"a" in
  let rb = find_row t ~subsys:"s" ~op:"b" in
  checki "a inclusive" 100 ra.Trace.total_cycles;
  checki "a self excludes child" 80 ra.Trace.self_cycles;
  checki "b inclusive" 20 rb.Trace.total_cycles;
  checki "b self" 20 rb.Trace.self_cycles;
  checki "a max" 100 ra.Trace.max_cycles;
  checki "x86 attribution" 100 ra.Trace.node_cycles.(Node_id.index Node_id.X86);
  checki "arm untouched" 0 ra.Trace.node_cycles.(Node_id.index Node_id.Arm);
  checki "top-level coverage" 100 (Trace.node_span_cycles t Node_id.X86);
  checki "nothing left open" 0 (Trace.open_spans t)

let test_spans_nest_per_node () =
  (* spans on different nodes must not treat each other as parent/child *)
  let t = Trace.create () in
  Trace.install t;
  let a = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  let b = Trace.span ~at:0 ~node:Node_id.Arm ~subsys:"s" ~op:"b" () in
  Trace.close ~at:50 b;
  Trace.close ~at:100 a;
  Trace.uninstall ();
  let ra = find_row t ~subsys:"s" ~op:"a" in
  checki "a self not reduced by arm span" 100 ra.Trace.self_cycles;
  checki "arm top-level" 50 (Trace.node_span_cycles t Node_id.Arm)

let test_disabled_recording_is_inert () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let sp = Trace.span ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  Alcotest.(check bool) "inert handle" true (sp == Trace.null);
  Trace.close sp;
  Trace.instant ~subsys:"s" ~op:"e" ()

let test_filter_restricts_subsystems () =
  let t = Trace.create ~filter:[ "keep" ] () in
  Trace.install t;
  Trace.instant ~at:1 ~node:Node_id.X86 ~subsys:"keep" ~op:"x" ();
  Trace.instant ~at:2 ~node:Node_id.X86 ~subsys:"drop" ~op:"y" ();
  let sp = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"drop" ~op:"z" () in
  Alcotest.(check bool) "filtered span is inert" true (sp == Trace.null);
  Trace.close ~at:9 sp;
  Trace.uninstall ();
  checki "one event" 1 (Trace.recorded t);
  Alcotest.(check (list string)) "subsystems" [ "keep" ] (Trace.subsystems t)

(* ---------- ring overflow ---------- *)

let test_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  Trace.install t;
  for i = 1 to 10 do
    Trace.instant ~at:i ~node:Node_id.X86 ~subsys:"s" ~op:"tick" ()
  done;
  Trace.uninstall ();
  checki "all recorded" 10 (Trace.recorded t);
  checki "overflow counted" 6 (Trace.dropped t);
  let evs = Trace.events t in
  checki "ring keeps newest" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.ev_ts) evs);
  (* attribution is folded at record time, so overflow never loses counts *)
  checki "attribution survives overflow" 10 (find_row t ~subsys:"s" ~op:"tick").Trace.count

(* ---------- Chrome export ---------- *)

let trace_npb_is () =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let spec =
        W.Npb_is.spec ~params:{ W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ()
      in
      let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
      let proc, thread = Machine.load machine spec in
      let result = Runner.run machine proc thread spec in
      (t, result))

let test_chrome_export_deterministic () =
  let t1, _ = trace_npb_is () in
  let t2, _ = trace_npb_is () in
  let s1 = Trace.chrome_string t1 and s2 = Trace.chrome_string t2 in
  Alcotest.(check bool) "nonempty" true (String.length s1 > 2);
  checks "identical runs export identical traces" s1 s2;
  (match Json.parse s1 with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.get_list with
      | Some evs -> Alcotest.(check bool) "has events" true (List.length evs > 0)
      | None -> Alcotest.fail "traceEvents missing"));
  match Json.parse (Trace.jsonl_string t1) with
  | Ok _ -> () (* first line parses as an object; good enough *)
  | Error _ ->
      (* jsonl is line-delimited; validate each line instead *)
      String.split_on_char '\n' (Trace.jsonl_string t1)
      |> List.iter (fun line ->
             if line <> "" then
               match Json.parse line with
               | Ok _ -> ()
               | Error e -> Alcotest.fail ("bad jsonl line: " ^ e))

let test_traced_run_covers_subsystems_and_agrees_with_meters () =
  let t, result = trace_npb_is () in
  let subs = Trace.subsystems t in
  Alcotest.(check bool)
    (Printf.sprintf "at least 8 subsystems (got %s)" (String.concat "," subs))
    true
    (List.length subs >= 8);
  List.iter
    (fun node ->
      let meter = result.Runner.node_cycles.(Node_id.index node) in
      let spans = Trace.node_span_cycles t node in
      let drift = abs (meter - spans) in
      Alcotest.(check bool)
        (Printf.sprintf "%s span coverage within 1%% of meter (meter=%d spans=%d)"
           (Node_id.to_string node) meter spans)
        true
        (float_of_int drift <= 0.01 *. float_of_int meter))
    Node_id.all;
  (* the runner's top spans also appear in the attribution table *)
  let run_row = find_row t ~subsys:"runner" ~op:"run" in
  checki "one top span per node" 2 run_row.Trace.count

(* ---------- probe chaining ---------- *)

let test_probe_chaining () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let hits_a = ref 0 and hits_b = ref 0 and order = ref [] in
  Cache_sim.add_probe cache (fun _ _ _ ->
      incr hits_a;
      order := "a" :: !order);
  Cache_sim.add_probe cache (fun _ _ _ ->
      incr hits_b;
      order := "b" :: !order);
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x1000);
  checki "first probe fired" 1 !hits_a;
  checki "second probe fired" 1 !hits_b;
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ] (List.rev !order);
  (* historical semantics: Some resets to exactly one, None clears all *)
  Cache_sim.set_probe cache (Some (fun _ _ _ -> incr hits_a));
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x2000);
  checki "set_probe replaced the chain" 2 !hits_a;
  checki "old second probe gone" 1 !hits_b;
  Cache_sim.set_probe cache None;
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x3000);
  checki "cleared" 2 !hits_a

let test_writeback_hook_chaining () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let a = ref 0 and b = ref 0 in
  Cache_sim.add_writeback_hook cache (fun _ ~line:_ -> incr a);
  Cache_sim.add_writeback_hook cache (fun _ ~line:_ -> incr b);
  (* force evictions of dirty lines by writing far more lines than the
     hierarchy can hold *)
  for i = 0 to 2_000_000 do
    ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Store ~paddr:(i * 64))
  done;
  Alcotest.(check bool) "writebacks happened" true (!a > 0);
  checki "both hooks saw every writeback" !a !b

(* ---------- causal flows ---------- *)

module Causal = Stramash_obs.Causal

let test_flow_minting_and_inheritance () =
  let t = Trace.create () in
  Trace.install t;
  let plain = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"plain" () in
  checki "no flow without flow_root" 0 (Trace.flow_of plain);
  Trace.close ~at:1 plain;
  let root = Trace.span ~at:10 ~flow_root:true ~node:Node_id.X86 ~subsys:"s" ~op:"root" () in
  let flow = Trace.flow_of root in
  Alcotest.(check bool) "flow_root mints nonzero" true (flow <> 0);
  let child = Trace.span ~at:20 ~node:Node_id.X86 ~subsys:"s" ~op:"child" () in
  checki "child inherits" flow (Trace.flow_of child);
  let nested_root =
    Trace.span ~at:25 ~flow_root:true ~node:Node_id.X86 ~subsys:"s" ~op:"nested" ()
  in
  checki "flow_root under a flow inherits instead of minting" flow (Trace.flow_of nested_root);
  Trace.close ~at:26 nested_root;
  Trace.close ~at:30 child;
  (* responder side: the override stack beats everything on that node *)
  Trace.with_flow ~node:Node_id.Arm ~flow (fun () ->
      let remote = Trace.span ~at:40 ~node:Node_id.Arm ~subsys:"r" ~op:"serve" () in
      checki "override carries requester flow cross-node" flow (Trace.flow_of remote);
      Trace.close ~at:50 remote);
  Trace.close ~at:100 root;
  let f1 = Trace.fresh_flow ~node:Node_id.X86 in
  let f2 = Trace.fresh_flow ~node:Node_id.Arm in
  Trace.uninstall ();
  Alcotest.(check bool) "fresh flows distinct and nonzero" true
    (f1 <> 0 && f2 <> 0 && f1 <> f2 && f1 <> flow && f2 <> flow);
  checki "fresh_flow without tracer" 0 (Trace.fresh_flow ~node:Node_id.X86)

let test_critical_path_tiles_root () =
  let t = Trace.create () in
  Trace.install t;
  let root = Trace.span ~at:0 ~flow_root:true ~node:Node_id.X86 ~subsys:"msg" ~op:"rpc" () in
  let flow = Trace.flow_of root in
  let send = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"msg" ~op:"send" () in
  Trace.close ~at:30 send;
  (* responder hops synthesized in the requester's clock *)
  Trace.with_flow ~node:Node_id.Arm ~flow (fun () ->
      let w = Trace.span ~at:30 ~node:Node_id.Arm ~subsys:"interconnect" ~op:"request" () in
      Trace.close ~at:45 w;
      let s = Trace.span ~at:45 ~node:Node_id.Arm ~subsys:"msg" ~op:"serve" () in
      Trace.close ~at:80 s);
  (* an unanchored responder event in a foreign clock must be dropped *)
  Trace.with_flow ~node:Node_id.Arm ~flow (fun () ->
      let stray = Trace.span ~at:100_000 ~node:Node_id.Arm ~subsys:"msg" ~op:"stray" () in
      Trace.close ~at:100_050 stray);
  Trace.close ~at:100 root;
  Trace.uninstall ();
  match Causal.flows_of_events (Trace.events t) with
  | [ f ] ->
      checki "end-to-end cycles" 100 f.Causal.f_cycles;
      checks "root op" "rpc" f.Causal.f_root_op;
      let sum = List.fold_left (fun acc h -> acc + h.Causal.h_cycles) 0 f.Causal.f_path in
      checki "hop cycles tile the root exactly" f.Causal.f_cycles sum;
      Alcotest.(check bool) "cross-node" true (Causal.cross_node_flows [ f ] <> []);
      Alcotest.(check bool) "stray event dropped" true
        (not (List.exists (fun h -> h.Causal.h_op = "stray") f.Causal.f_path));
      (* the reply gap [80,100] folds into requester self time *)
      let self =
        List.fold_left
          (fun acc h -> if h.Causal.h_op = "rpc" then acc + h.Causal.h_cycles else acc)
          0 f.Causal.f_path
      in
      checki "the uncovered reply gap becomes requester self time" 20 self;
      let blame = Causal.blame [ f ] in
      let total = List.fold_left (fun acc r -> acc + r.Causal.b_cycles) 0 blame in
      checki "blame conserves cycles" 100 total
  | flows -> Alcotest.fail (Printf.sprintf "expected 1 flow, got %d" (List.length flows))

let test_blocked_accounting () =
  let t = Trace.create ~filter:[ "msg" ] () in
  Trace.install t;
  Trace.add_blocked ~node:Node_id.X86 ~subsys:"msg" 100;
  Trace.add_blocked ~node:Node_id.X86 ~subsys:"msg" 50;
  Trace.add_blocked ~node:Node_id.Arm ~subsys:"msg" 7;
  Trace.add_blocked ~node:Node_id.X86 ~subsys:"msg" 0;
  Trace.add_blocked ~node:Node_id.X86 ~subsys:"filtered_out" 999;
  Trace.uninstall ();
  checki "x86 total" 150 (Trace.node_blocked_cycles t Node_id.X86);
  checki "arm total" 7 (Trace.node_blocked_cycles t Node_id.Arm);
  (match Trace.blocked_rows t with
  | [ ("msg", row) ] ->
      checki "x86 row" 150 row.(Node_id.index Node_id.X86);
      checki "arm row" 7 row.(Node_id.index Node_id.Arm)
  | rows -> Alcotest.fail (Printf.sprintf "expected one msg row, got %d" (List.length rows)));
  match Obs.Json.member "x86" (Trace.blocked_json t) with
  | Some node -> (
      match Option.bind (Obs.Json.member "total" node) Obs.Json.get_int with
      | Some n -> checki "json total" 150 n
      | None -> Alcotest.fail "blocked json missing total")
  | None -> Alcotest.fail "blocked json missing node"

let test_ring_drops_per_subsystem () =
  let t = Trace.create ~capacity:4 () in
  Trace.install t;
  for i = 1 to 4 do
    Trace.instant ~at:i ~node:Node_id.X86 ~subsys:"first" ~op:"tick" ()
  done;
  for i = 5 to 10 do
    Trace.instant ~at:i ~node:Node_id.X86 ~subsys:"second" ~op:"tick" ()
  done;
  Trace.uninstall ();
  checki "aggregate drops" 6 (Trace.dropped t);
  Alcotest.(check (list (pair string int)))
    "drops attributed to the overwritten event's subsystem"
    [ ("first", 4); ("second", 2) ]
    (Trace.dropped_by_subsystem t);
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Trace.dropped_by_subsystem t)
  in
  checki "per-subsystem drops sum to the aggregate" (Trace.dropped t) total

let test_reservoir_keeps_tail () =
  let r = Causal.Reservoir.create ~percentile:0.9 ~max_keep:3 () in
  let mk i cycles =
    {
      Causal.f_id = i;
      f_node = 0;
      f_start = 0;
      f_cycles = cycles;
      f_root_subsys = "s";
      f_root_op = "op";
      f_path = [];
      f_spans = 1;
    }
  in
  for i = 1 to 100 do
    Causal.Reservoir.offer r (mk i i)
  done;
  checki "count" 100 (Causal.Reservoir.count r);
  let threshold, tail = Causal.Reservoir.finalize r in
  checki "p90 threshold" 90 threshold;
  checki "bounded exemplars" 3 (List.length tail);
  Alcotest.(check (list int)) "keeps the largest flows, descending" [ 100; 99; 98 ]
    (List.map (fun f -> f.Causal.f_cycles) tail);
  Alcotest.(check bool) "rejects bad percentile" true
    (try
       ignore (Causal.Reservoir.create ~percentile:1.5 ());
       false
     with Invalid_argument _ -> true);
  let empty_threshold, empty_tail = Causal.Reservoir.finalize (Causal.Reservoir.create ()) in
  checki "empty threshold" 0 empty_threshold;
  checki "empty tail" 0 (List.length empty_tail)

let test_folded_flamegraph () =
  let t = Trace.create () in
  Trace.install t;
  let a = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"outer" () in
  let b = Trace.span ~at:10 ~node:Node_id.X86 ~subsys:"s" ~op:"inner" () in
  Trace.close ~at:40 b;
  Trace.close ~at:100 a;
  let c = Trace.span ~at:0 ~node:Node_id.Arm ~subsys:"r" ~op:"top" () in
  Trace.close ~at:25 c;
  Trace.uninstall ();
  checks "folded stacks, aggregated and sorted"
    "arm;r.top 25\nx86;s.outer 70\nx86;s.outer;s.inner 30\n"
    (Causal.folded (Trace.events t))

let test_offline_round_trip () =
  let t = Trace.create () in
  Trace.install t;
  let root = Trace.span ~at:0 ~flow_root:true ~node:Node_id.X86 ~subsys:"msg" ~op:"rpc" () in
  let flow = Trace.flow_of root in
  Trace.with_flow ~node:Node_id.Arm ~flow (fun () ->
      let s = Trace.span ~at:10 ~node:Node_id.Arm ~subsys:"msg" ~op:"serve" () in
      Trace.close ~at:60 s);
  Trace.close ~at:100 root;
  Trace.uninstall ();
  let check_events label = function
    | Error e -> Alcotest.fail (label ^ ": " ^ e)
    | Ok events -> (
        match Causal.flows_of_events events with
        | [ f ] ->
            checki (label ^ " flow cycles") 100 f.Causal.f_cycles;
            checki (label ^ " hops sum") 100
              (List.fold_left (fun acc h -> acc + h.Causal.h_cycles) 0 f.Causal.f_path);
            Alcotest.(check bool) (label ^ " cross-node") true
              (Causal.cross_node_flows [ f ] <> [])
        | flows -> Alcotest.fail (Printf.sprintf "%s: %d flows" label (List.length flows)))
  in
  check_events "chrome" (Causal.events_of_string (Trace.chrome_string t));
  check_events "jsonl" (Causal.events_of_string (Trace.jsonl_string t));
  (match Causal.events_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input must be rejected");
  match Causal.events_of_string "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage input must be rejected"

(* End-to-end: a traced stramash NPB run produces cross-node flows whose
   critical paths tile their root spans, and nonzero blocked-on-remote
   cycles — the Fig. 9/10 "where did the cycles go" story, causally. *)
let test_traced_run_has_cross_node_flows () =
  let t, _ = trace_npb_is () in
  let flows = Causal.flows_of_events (Trace.events t) in
  Alcotest.(check bool) "flows assembled" true (flows <> []);
  List.iter
    (fun f ->
      let sum = List.fold_left (fun acc h -> acc + h.Causal.h_cycles) 0 f.Causal.f_path in
      checki
        (Printf.sprintf "flow %d (%s.%s) hops sum to end-to-end span" f.Causal.f_id
           f.Causal.f_root_subsys f.Causal.f_root_op)
        f.Causal.f_cycles sum)
    flows;
  let cross = Causal.cross_node_flows flows in
  Alcotest.(check bool) "cross-node flows exist" true (cross <> []);
  Alcotest.(check bool) "a remote fault crosses nodes" true
    (List.exists (fun f -> f.Causal.f_root_subsys = "stramash_fault") cross);
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Node_id.to_string node ^ " has blocked-on-remote cycles")
        true
        (Trace.node_blocked_cycles t node > 0))
    Node_id.all;
  (* the snapshot sections render and carry the same flow count *)
  let snap = Obs.Snapshot.create () in
  Obs.Snapshot.add_causal snap t;
  match Obs.Snapshot.section snap "critical_path" with
  | Some cp ->
      checki "snapshot flow count"
        (List.length flows)
        (Option.value ~default:(-1) (Option.bind (Obs.Json.member "flows" cp) Obs.Json.get_int))
  | None -> Alcotest.fail "critical_path section missing"

(* ---------- Json satellite ---------- *)

let test_json_float_round_trip () =
  let cases =
    [ (Json.Float 2.0, "2.0"); (Json.Float 0.5, "0.5"); (Json.Float (-3.0), "-3.0") ]
  in
  List.iter
    (fun (v, expect) ->
      checks "integral floats render with a decimal point" expect (Json.to_string v);
      match Json.parse (Json.to_string v) with
      | Ok (Json.Float _ as back) ->
          checks "round-trips as Float" (Json.to_string v) (Json.to_string back)
      | Ok other -> Alcotest.fail ("re-parsed as " ^ Json.to_string other)
      | Error e -> Alcotest.fail e)
    cases;
  checks "non-finite floats stay float-typed" "0.0" (Json.to_string (Json.Float Float.nan));
  checks "ints unchanged" "2" (Json.to_string (Json.Int 2));
  (match Json.parse "2" with
  | Ok (Json.Int 2) -> ()
  | _ -> Alcotest.fail "bare 2 must stay Int");
  (* the histogram case that motivated the fix: a snapshot with an
     integral mean must reconstruct equal to its source *)
  let snap = Obs.Snapshot.create () in
  Obs.Snapshot.add_json snap "h" (Json.Obj [ ("mean", Json.Float 4.0) ]);
  match Json.parse (Obs.Snapshot.to_string snap) with
  | Ok j -> checks "snapshot round-trip" (Obs.Snapshot.to_string snap) (Json.to_string j)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let expect_error label s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected a parse error")
  in
  expect_error "trailing garbage" "{\"a\":1} extra";
  expect_error "trailing value" "1 2";
  expect_error "unterminated string" "\"abc";
  expect_error "unterminated string in object" "{\"k\": \"v";
  expect_error "bare escape at end" "\"ab\\";
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  expect_error "deep nesting rejected, not a stack overflow" (deep 10_000);
  (match Json.parse (deep 600) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "600 levels should exceed the depth limit");
  (* well-formed nesting below the limit still parses *)
  let ok = String.concat "" (List.init 100 (fun _ -> "[")) ^ "1" ^ String.concat "" (List.init 100 (fun _ -> "]")) in
  match Json.parse ok with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("100 levels must parse: " ^ e)

let test_obs_report_fastpath_print () =
  let t = Trace.create () in
  Trace.install t;
  let sp = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  Trace.close ~at:10 sp;
  Trace.add_blocked ~node:Node_id.X86 ~subsys:"s" 42;
  Trace.uninstall ();
  let buf = Buffer.create 256 in
  let bfmt = Format.formatter_of_buffer buf in
  Stramash_harness.Obs_report.print
    ~fastpath:
      [ ("x86.l0_hits", 75); ("x86.l0_misses", 25); ("arm.l0_hits", 0); ("arm.l0_misses", 0) ]
    bfmt t;
  Format.pp_print_flush bfmt ();
  let out = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prints the fast-path summary" true (contains "fast-path L0");
  Alcotest.(check bool) "x86 hit split" true (contains "x86=75/100");
  Alcotest.(check bool) "hit percentage" true (contains "75.0%");
  Alcotest.(check bool) "blocked summary" true (contains "blocked-on-remote cycles: x86=42")

(* ---------- metrics satellite ---------- *)

let test_histogram_merge () =
  let mk () = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:80.0 in
  let a = mk () and b = mk () in
  List.iter (Metrics.Histogram.record a) [ 5.0; 15.0; 75.0 ];
  List.iter (Metrics.Histogram.record b) [ 15.0; 35.0 ];
  let m = Metrics.Histogram.merge a b in
  checki "count" 5 (Metrics.Histogram.count m);
  Alcotest.(check (float 1e-9)) "mean" 29.0 (Metrics.Histogram.mean m);
  Alcotest.(check bool) "merge rejects shape mismatch" true
    (try
       ignore (Metrics.Histogram.merge a (Metrics.Histogram.create ~buckets:4 ~lo:0.0 ~hi:80.0));
       false
     with Invalid_argument _ -> true)

let test_metrics_to_assoc () =
  let reg = Metrics.registry () in
  Metrics.incr reg "b";
  Metrics.incr reg "a";
  Metrics.incr reg "a";
  let assoc = Metrics.to_assoc reg in
  checki "a" 2 (List.assoc "a" assoc);
  checki "b" 1 (List.assoc "b" assoc)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting arithmetic" `Quick test_span_nesting_arithmetic;
          Alcotest.test_case "per-node stacks" `Quick test_spans_nest_per_node;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_recording_is_inert;
          Alcotest.test_case "subsystem filter" `Quick test_filter_restricts_subsystems;
        ] );
      ("ring", [ Alcotest.test_case "overflow" `Quick test_ring_overflow ]);
      ( "export",
        [
          Alcotest.test_case "chrome deterministic" `Quick test_chrome_export_deterministic;
          Alcotest.test_case "coverage and meter agreement" `Quick
            test_traced_run_covers_subsystems_and_agrees_with_meters;
        ] );
      ( "cache probes",
        [
          Alcotest.test_case "probe chaining" `Quick test_probe_chaining;
          Alcotest.test_case "writeback hook chaining" `Quick test_writeback_hook_chaining;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "to_assoc" `Quick test_metrics_to_assoc;
        ] );
      ( "flows",
        [
          Alcotest.test_case "minting and inheritance" `Quick test_flow_minting_and_inheritance;
          Alcotest.test_case "blocked accounting" `Quick test_blocked_accounting;
          Alcotest.test_case "ring drops per subsystem" `Quick test_ring_drops_per_subsystem;
        ] );
      ( "causal",
        [
          Alcotest.test_case "critical path tiles root" `Quick test_critical_path_tiles_root;
          Alcotest.test_case "reservoir keeps tail" `Quick test_reservoir_keeps_tail;
          Alcotest.test_case "folded flamegraph" `Quick test_folded_flamegraph;
          Alcotest.test_case "offline round trip" `Quick test_offline_round_trip;
          Alcotest.test_case "traced run has cross-node flows" `Quick
            test_traced_run_has_cross_node_flows;
        ] );
      ( "json",
        [
          Alcotest.test_case "float round trip" `Quick test_json_float_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "report",
        [ Alcotest.test_case "fastpath print" `Quick test_obs_report_fastpath_print ] );
    ]
