(* Tests for the observability subsystem: span nesting and attribution
   arithmetic, ring overflow, Chrome-export determinism, probe chaining,
   and the end-to-end meter-agreement property on a traced run. *)

module Node_id = Stramash_sim.Node_id
module Metrics = Stramash_sim.Metrics
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Layout = Stramash_mem.Layout
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads
module Obs = Stramash_obs
module Trace = Stramash_obs.Trace
module Json = Stramash_obs.Json

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let find_row tracer ~subsys ~op =
  match
    List.find_opt
      (fun (r : Trace.row) -> r.Trace.subsys = subsys && r.Trace.op = op)
      (Trace.attribution tracer)
  with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no attribution row for %s/%s" subsys op)

(* ---------- span arithmetic ---------- *)

let test_span_nesting_arithmetic () =
  let t = Trace.create () in
  Trace.install t;
  let a = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  let b = Trace.span ~at:10 ~node:Node_id.X86 ~subsys:"s" ~op:"b" () in
  Trace.close ~at:30 b;
  Trace.close ~at:100 a;
  Trace.uninstall ();
  let ra = find_row t ~subsys:"s" ~op:"a" in
  let rb = find_row t ~subsys:"s" ~op:"b" in
  checki "a inclusive" 100 ra.Trace.total_cycles;
  checki "a self excludes child" 80 ra.Trace.self_cycles;
  checki "b inclusive" 20 rb.Trace.total_cycles;
  checki "b self" 20 rb.Trace.self_cycles;
  checki "a max" 100 ra.Trace.max_cycles;
  checki "x86 attribution" 100 ra.Trace.node_cycles.(Node_id.index Node_id.X86);
  checki "arm untouched" 0 ra.Trace.node_cycles.(Node_id.index Node_id.Arm);
  checki "top-level coverage" 100 (Trace.node_span_cycles t Node_id.X86);
  checki "nothing left open" 0 (Trace.open_spans t)

let test_spans_nest_per_node () =
  (* spans on different nodes must not treat each other as parent/child *)
  let t = Trace.create () in
  Trace.install t;
  let a = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  let b = Trace.span ~at:0 ~node:Node_id.Arm ~subsys:"s" ~op:"b" () in
  Trace.close ~at:50 b;
  Trace.close ~at:100 a;
  Trace.uninstall ();
  let ra = find_row t ~subsys:"s" ~op:"a" in
  checki "a self not reduced by arm span" 100 ra.Trace.self_cycles;
  checki "arm top-level" 50 (Trace.node_span_cycles t Node_id.Arm)

let test_disabled_recording_is_inert () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let sp = Trace.span ~node:Node_id.X86 ~subsys:"s" ~op:"a" () in
  Alcotest.(check bool) "inert handle" true (sp == Trace.null);
  Trace.close sp;
  Trace.instant ~subsys:"s" ~op:"e" ()

let test_filter_restricts_subsystems () =
  let t = Trace.create ~filter:[ "keep" ] () in
  Trace.install t;
  Trace.instant ~at:1 ~node:Node_id.X86 ~subsys:"keep" ~op:"x" ();
  Trace.instant ~at:2 ~node:Node_id.X86 ~subsys:"drop" ~op:"y" ();
  let sp = Trace.span ~at:0 ~node:Node_id.X86 ~subsys:"drop" ~op:"z" () in
  Alcotest.(check bool) "filtered span is inert" true (sp == Trace.null);
  Trace.close ~at:9 sp;
  Trace.uninstall ();
  checki "one event" 1 (Trace.recorded t);
  Alcotest.(check (list string)) "subsystems" [ "keep" ] (Trace.subsystems t)

(* ---------- ring overflow ---------- *)

let test_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  Trace.install t;
  for i = 1 to 10 do
    Trace.instant ~at:i ~node:Node_id.X86 ~subsys:"s" ~op:"tick" ()
  done;
  Trace.uninstall ();
  checki "all recorded" 10 (Trace.recorded t);
  checki "overflow counted" 6 (Trace.dropped t);
  let evs = Trace.events t in
  checki "ring keeps newest" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.ev_ts) evs);
  (* attribution is folded at record time, so overflow never loses counts *)
  checki "attribution survives overflow" 10 (find_row t ~subsys:"s" ~op:"tick").Trace.count

(* ---------- Chrome export ---------- *)

let trace_npb_is () =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let spec =
        W.Npb_is.spec ~params:{ W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ()
      in
      let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
      let proc, thread = Machine.load machine spec in
      let result = Runner.run machine proc thread spec in
      (t, result))

let test_chrome_export_deterministic () =
  let t1, _ = trace_npb_is () in
  let t2, _ = trace_npb_is () in
  let s1 = Trace.chrome_string t1 and s2 = Trace.chrome_string t2 in
  Alcotest.(check bool) "nonempty" true (String.length s1 > 2);
  checks "identical runs export identical traces" s1 s2;
  (match Json.parse s1 with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.get_list with
      | Some evs -> Alcotest.(check bool) "has events" true (List.length evs > 0)
      | None -> Alcotest.fail "traceEvents missing"));
  match Json.parse (Trace.jsonl_string t1) with
  | Ok _ -> () (* first line parses as an object; good enough *)
  | Error _ ->
      (* jsonl is line-delimited; validate each line instead *)
      String.split_on_char '\n' (Trace.jsonl_string t1)
      |> List.iter (fun line ->
             if line <> "" then
               match Json.parse line with
               | Ok _ -> ()
               | Error e -> Alcotest.fail ("bad jsonl line: " ^ e))

let test_traced_run_covers_subsystems_and_agrees_with_meters () =
  let t, result = trace_npb_is () in
  let subs = Trace.subsystems t in
  Alcotest.(check bool)
    (Printf.sprintf "at least 8 subsystems (got %s)" (String.concat "," subs))
    true
    (List.length subs >= 8);
  List.iter
    (fun node ->
      let meter = result.Runner.node_cycles.(Node_id.index node) in
      let spans = Trace.node_span_cycles t node in
      let drift = abs (meter - spans) in
      Alcotest.(check bool)
        (Printf.sprintf "%s span coverage within 1%% of meter (meter=%d spans=%d)"
           (Node_id.to_string node) meter spans)
        true
        (float_of_int drift <= 0.01 *. float_of_int meter))
    Node_id.all;
  (* the runner's top spans also appear in the attribution table *)
  let run_row = find_row t ~subsys:"runner" ~op:"run" in
  checki "one top span per node" 2 run_row.Trace.count

(* ---------- probe chaining ---------- *)

let test_probe_chaining () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let hits_a = ref 0 and hits_b = ref 0 and order = ref [] in
  Cache_sim.add_probe cache (fun _ _ _ ->
      incr hits_a;
      order := "a" :: !order);
  Cache_sim.add_probe cache (fun _ _ _ ->
      incr hits_b;
      order := "b" :: !order);
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x1000);
  checki "first probe fired" 1 !hits_a;
  checki "second probe fired" 1 !hits_b;
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ] (List.rev !order);
  (* historical semantics: Some resets to exactly one, None clears all *)
  Cache_sim.set_probe cache (Some (fun _ _ _ -> incr hits_a));
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x2000);
  checki "set_probe replaced the chain" 2 !hits_a;
  checki "old second probe gone" 1 !hits_b;
  Cache_sim.set_probe cache None;
  ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:0x3000);
  checki "cleared" 2 !hits_a

let test_writeback_hook_chaining () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let a = ref 0 and b = ref 0 in
  Cache_sim.add_writeback_hook cache (fun _ ~line:_ -> incr a);
  Cache_sim.add_writeback_hook cache (fun _ ~line:_ -> incr b);
  (* force evictions of dirty lines by writing far more lines than the
     hierarchy can hold *)
  for i = 0 to 2_000_000 do
    ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Store ~paddr:(i * 64))
  done;
  Alcotest.(check bool) "writebacks happened" true (!a > 0);
  checki "both hooks saw every writeback" !a !b

(* ---------- metrics satellite ---------- *)

let test_histogram_merge () =
  let mk () = Metrics.Histogram.create ~buckets:8 ~lo:0.0 ~hi:80.0 in
  let a = mk () and b = mk () in
  List.iter (Metrics.Histogram.record a) [ 5.0; 15.0; 75.0 ];
  List.iter (Metrics.Histogram.record b) [ 15.0; 35.0 ];
  let m = Metrics.Histogram.merge a b in
  checki "count" 5 (Metrics.Histogram.count m);
  Alcotest.(check (float 1e-9)) "mean" 29.0 (Metrics.Histogram.mean m);
  Alcotest.(check bool) "merge rejects shape mismatch" true
    (try
       ignore (Metrics.Histogram.merge a (Metrics.Histogram.create ~buckets:4 ~lo:0.0 ~hi:80.0));
       false
     with Invalid_argument _ -> true)

let test_metrics_to_assoc () =
  let reg = Metrics.registry () in
  Metrics.incr reg "b";
  Metrics.incr reg "a";
  Metrics.incr reg "a";
  let assoc = Metrics.to_assoc reg in
  checki "a" 2 (List.assoc "a" assoc);
  checki "b" 1 (List.assoc "b" assoc)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting arithmetic" `Quick test_span_nesting_arithmetic;
          Alcotest.test_case "per-node stacks" `Quick test_spans_nest_per_node;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_recording_is_inert;
          Alcotest.test_case "subsystem filter" `Quick test_filter_restricts_subsystems;
        ] );
      ("ring", [ Alcotest.test_case "overflow" `Quick test_ring_overflow ]);
      ( "export",
        [
          Alcotest.test_case "chrome deterministic" `Quick test_chrome_export_deterministic;
          Alcotest.test_case "coverage and meter agreement" `Quick
            test_traced_run_covers_subsystems_and_agrees_with_meters;
        ] );
      ( "cache probes",
        [
          Alcotest.test_case "probe chaining" `Quick test_probe_chaining;
          Alcotest.test_case "writeback hook chaining" `Quick test_writeback_hook_chaining;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "to_assoc" `Quick test_metrics_to_assoc;
        ] );
    ]
