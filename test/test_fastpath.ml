(* Tests for the hot-path memory pipeline: the L0 line filters, the fused
   TLB translate, and the phys page-pointer cache must be *bit- and
   cycle-identical* to the reference path. Every test here compares Fast
   (and Paranoid) against Reference, or exercises an invalidation edge the
   fast path must observe: TLB shootdown, MESI snoop, M-state downgrade,
   eviction + refill at the same way. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Tlb = Stramash_kernel.Tlb
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads

let checki = Alcotest.(check int)
let x86 = Node_id.X86
let arm = Node_id.Arm

let fresh mode ?(hw = Layout.Shared) () =
  let c = Cache_sim.create (Config.default hw) in
  Cache_sim.set_mode c mode;
  c

(* Drive the same access sequence through a fast-mode and a reference-mode
   simulator; every returned latency must match, and so must the full
   per-node stat registries afterwards. *)
let check_lockstep ?(hw = Layout.Shared) trace =
  let fast = fresh Cache_sim.Fast ~hw () in
  let ref_ = fresh Cache_sim.Reference ~hw () in
  List.iteri
    (fun i (node, kind, paddr) ->
      let lf = Cache_sim.access fast ~node kind ~paddr in
      let lr = Cache_sim.access ref_ ~node kind ~paddr in
      if lf <> lr then
        Alcotest.failf "access %d (%s paddr=0x%x): fast=%d reference=%d" i
          (Node_id.to_string node) paddr lf lr)
    trace;
  Alcotest.(check (list (pair string int)))
    "stat registries identical"
    (Metrics.to_assoc (Cache_sim.stats ref_))
    (Metrics.to_assoc (Cache_sim.stats fast));
  (match Cache_sim.check_consistency fast with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fast-mode invariants: %s" msg);
  fast

let a = 4096 * 17 (* x86-private page *)

let test_l0_hit_counted () =
  let fast =
    check_lockstep
      [ (x86, Cache_sim.Load, a); (x86, Cache_sim.Load, a); (x86, Cache_sim.Load, a) ]
  in
  (* the filter fills on a slow-path L1 hit (the first repeat), so the
     second repeat is the first to answer from L0 *)
  checki "l0 hits" 1 (Cache_sim.stat fast x86 "l0_hits");
  checki "l0 misses" 2 (Cache_sim.stat fast x86 "l0_misses")

let test_snoop_invalidation_seen () =
  (* Peer store invalidates the line while it sits in x86's L0: the next
     x86 access must re-miss exactly like the reference. *)
  ignore
    (check_lockstep
       [
         (x86, Cache_sim.Load, a);
         (x86, Cache_sim.Load, a);
         (arm, Cache_sim.Store, a);
         (x86, Cache_sim.Load, a);
         (x86, Cache_sim.Load, a);
       ])

let test_m_downgrade_store_upgrade () =
  (* A store L1-hit leaves the line M and sets the L0 store_m bit. A peer
     read downgrades M->S behind the filter's back; the next local store
     must pay the upgrade, not take the zero-cost M short-circuit. *)
  ignore
    (check_lockstep
       [
         (x86, Cache_sim.Store, a);
         (x86, Cache_sim.Store, a);
         (arm, Cache_sim.Load, a);
         (x86, Cache_sim.Store, a);
         (arm, Cache_sim.Load, a);
         (x86, Cache_sim.Store, a);
       ])

let test_eviction_refill_same_way () =
  (* Stream enough conflicting lines through one set to evict [a] and
     refill its way with another line; a stale L0 entry pointing at that
     way must not validate. *)
  let cfg = Config.default Layout.Shared in
  let sets = cfg.Config.l1d.Config.size / 64 / cfg.Config.l1d.Config.ways in
  let stride = sets * 64 in
  let conflicting = List.init 16 (fun i -> (x86, Cache_sim.Load, a + (i + 1) * stride)) in
  ignore
    (check_lockstep
       ((x86, Cache_sim.Load, a) :: (x86, Cache_sim.Load, a) :: conflicting
       @ [ (x86, Cache_sim.Load, a) ]))

let prop_mode_equivalence =
  QCheck.Test.make
    ~name:"fast and reference modes are cycle- and stat-identical on random traces" ~count:20
    QCheck.(pair (int_range 0 2) small_int)
    (fun (model_idx, seed) ->
      let hw = List.nth Layout.all_hw_models model_idx in
      let rng = Rng.create ~seed:(Int64.of_int (seed + 11)) in
      let trace =
        List.init 8_000 (fun _ ->
            let node = if Rng.bool rng then x86 else arm in
            let kind =
              match Rng.int rng 4 with
              | 0 -> Cache_sim.Ifetch
              | 1 | 2 -> Cache_sim.Load
              | _ -> Cache_sim.Store
            in
            (* concentrated addresses: repeats (L0 hits), evictions, sharing *)
            let paddr = (4096 * Rng.int rng 96) + (64 * Rng.int rng 64) in
            (node, kind, paddr))
      in
      ignore (check_lockstep ~hw trace);
      true)

let prop_paranoid_never_diverges =
  QCheck.Test.make ~name:"paranoid mode survives random traces without divergence" ~count:10
    QCheck.small_int (fun seed ->
      let c = fresh Cache_sim.Paranoid () in
      let rng = Rng.create ~seed:(Int64.of_int (seed + 3)) in
      for _ = 1 to 8_000 do
        let node = if Rng.bool rng then x86 else arm in
        let kind =
          match Rng.int rng 4 with
          | 0 -> Cache_sim.Ifetch
          | 1 | 2 -> Cache_sim.Load
          | _ -> Cache_sim.Store
        in
        let paddr = (4096 * Rng.int rng 96) + (64 * Rng.int rng 64) in
        ignore (Cache_sim.access c ~node kind ~paddr)
      done;
      Cache_sim.check_consistency c = Ok ())

(* ---------- fused TLB ---------- *)

let test_translate_matches_lookup () =
  let t = Tlb.create () in
  Tlb.insert t ~asid:1 ~vpage:42 { Tlb.frame = 7; writable = false };
  checki "read hit returns frame" 7 (Tlb.translate t ~asid:1 ~vpage:42 ~write:false);
  (* a write against a read-only entry is a *hit* (the reference counted it
     via lookup) that the caller must resolve with a walk *)
  checki "write on read-only entry" Tlb.not_writable (Tlb.translate t ~asid:1 ~vpage:42 ~write:true);
  checki "wrong asid misses" Tlb.miss (Tlb.translate t ~asid:2 ~vpage:42 ~write:false);
  checki "hits counted" 2 (Tlb.hits t);
  checki "misses counted" 1 (Tlb.misses t)

let test_translate_sees_shootdown () =
  let t = Tlb.create () in
  Tlb.insert t ~asid:1 ~vpage:42 { Tlb.frame = 7; writable = true };
  checki "hit before shootdown" 7 (Tlb.translate t ~asid:1 ~vpage:42 ~write:true);
  Tlb.flush_page t ~vpage:42;
  checki "miss after shootdown" Tlb.miss (Tlb.translate t ~asid:1 ~vpage:42 ~write:true);
  Tlb.insert t ~asid:1 ~vpage:42 { Tlb.frame = 9; writable = true };
  Tlb.flush_all t;
  checki "miss after full flush" Tlb.miss (Tlb.translate t ~asid:1 ~vpage:42 ~write:false)

let prop_translate_equals_lookup =
  QCheck.Test.make ~name:"Tlb.translate agrees with Tlb.lookup on random op streams" ~count:30
    QCheck.small_int (fun seed ->
      let a_ = Tlb.create () and b = Tlb.create () in
      let rng = Rng.create ~seed:(Int64.of_int (seed + 5)) in
      for _ = 1 to 2_000 do
        let asid = Rng.int rng 3 and vpage = Rng.int rng 200 in
        match Rng.int rng 6 with
        | 0 ->
            let e = { Tlb.frame = Rng.int rng 1000; writable = Rng.bool rng } in
            Tlb.insert a_ ~asid ~vpage e;
            Tlb.insert b ~asid ~vpage e
        | 1 ->
            Tlb.flush_page a_ ~vpage;
            Tlb.flush_page b ~vpage
        | _ ->
            let write = Rng.bool rng in
            let via_lookup =
              match Tlb.lookup a_ ~asid ~vpage with
              | Some e when (not write) || e.Tlb.writable -> e.Tlb.frame
              | Some _ -> Tlb.not_writable
              | None -> Tlb.miss
            in
            let fused = Tlb.translate b ~asid ~vpage ~write in
            if via_lookup <> fused then
              QCheck.Test.fail_reportf "asid=%d vpage=%d write=%b: lookup=%d translate=%d" asid
                vpage write via_lookup fused
      done;
      Tlb.hits a_ = Tlb.hits b && Tlb.misses a_ = Tlb.misses b)

(* ---------- phys page-pointer cache ---------- *)

let prop_phys_u64_equals_generic =
  QCheck.Test.make ~name:"width-specialised phys accessors match the generic path" ~count:30
    QCheck.small_int (fun seed ->
      let p = Phys_mem.create () and q = Phys_mem.create () in
      let rng = Rng.create ~seed:(Int64.of_int (seed + 9)) in
      for _ = 1 to 2_000 do
        (* aliased frames: exercise cache-slot conflicts (slot = frame mod slots) *)
        let a_ = (Rng.int rng 2048 * Addr.page_size) + (8 * Rng.int rng 512) in
        let v = Rng.next_int64 rng in
        if Rng.bool rng then begin
          Phys_mem.write_u64 p a_ v;
          Phys_mem.write q a_ ~width:8 v
        end
        else if Phys_mem.read_u64 p a_ <> Phys_mem.read q a_ ~width:8 then
          QCheck.Test.fail_reportf "read mismatch at 0x%x" a_
      done;
      Phys_mem.self_check p = Ok ())

(* ---------- whole-machine equivalence ---------- *)

let result_fingerprint (r : Runner.result) =
  ( ( r.Runner.wall_cycles,
      Array.to_list r.Runner.node_cycles,
      Array.to_list r.Runner.node_icounts,
      r.Runner.instructions,
      Array.to_list r.Runner.tlb_misses ),
    ( r.Runner.migrations,
      r.Runner.messages,
      r.Runner.replicated_pages,
      Array.to_list r.Runner.node_user_stalls,
      Array.to_list r.Runner.node_idle,
      r.Runner.phase_marks ) )

let npb_small = Stramash_harness.Npb_experiments.benchmarks ~small:true

let run_mode ~os ~cache_mode (_, spec) =
  let machine = Machine.create { Machine.default_config with os; cache_mode } in
  let proc, thread = Machine.load machine spec in
  Runner.run machine proc thread spec

let test_npb_fast_equals_reference () =
  List.iter
    (fun ((name, _) as bench) ->
      List.iter
        (fun os ->
          let fast = run_mode ~os ~cache_mode:Cache_sim.Fast bench in
          let ref_ = run_mode ~os ~cache_mode:Cache_sim.Reference bench in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s result fingerprints equal" name (Machine.os_choice_name os))
            true
            (result_fingerprint fast = result_fingerprint ref_);
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s/%s cache registries equal" name (Machine.os_choice_name os))
            (Metrics.to_assoc ref_.Runner.cache)
            (Metrics.to_assoc fast.Runner.cache);
          (* the fast run actually took the fast path *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s fast run used the L0 filter" name (Machine.os_choice_name os))
            true
            (Array.fold_left ( + ) 0 fast.Runner.ext.Runner.l0_hits > 0);
          checki
            (Printf.sprintf "%s/%s reference run has no L0 traffic" name
               (Machine.os_choice_name os))
            0
            (Array.fold_left ( + ) 0 ref_.Runner.ext.Runner.l0_hits
            + Array.fold_left ( + ) 0 ref_.Runner.ext.Runner.l0_misses))
        [ Machine.Vanilla; Machine.Stramash_kernel_os; Machine.Popcorn_shm ])
    npb_small

let test_npb_paranoid_clean () =
  (* Paranoid cross-checks every access against the reference engine and
     audits invariants at quantum boundaries; any divergence raises. The
     migrating Stramash config also covers page replication + shootdown
     invalidation under the filters. *)
  List.iter
    (fun ((name, _) as bench) ->
      let par = run_mode ~os:Machine.Stramash_kernel_os ~cache_mode:Cache_sim.Paranoid bench in
      let ref_ = run_mode ~os:Machine.Stramash_kernel_os ~cache_mode:Cache_sim.Reference bench in
      Alcotest.(check bool)
        (name ^ " paranoid matches reference")
        true
        (result_fingerprint par = result_fingerprint ref_))
    [ List.hd npb_small ]

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mode_equivalence;
      prop_paranoid_never_diverges;
      prop_translate_equals_lookup;
      prop_phys_u64_equals_generic;
    ]

let () =
  Alcotest.run "fastpath"
    [
      ( "l0",
        [
          Alcotest.test_case "hit counted" `Quick test_l0_hit_counted;
          Alcotest.test_case "snoop invalidation" `Quick test_snoop_invalidation_seen;
          Alcotest.test_case "M downgrade upgrade cost" `Quick test_m_downgrade_store_upgrade;
          Alcotest.test_case "eviction refill same way" `Quick test_eviction_refill_same_way;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "translate matches lookup" `Quick test_translate_matches_lookup;
          Alcotest.test_case "shootdown" `Quick test_translate_sees_shootdown;
        ] );
      ( "machine",
        [
          Alcotest.test_case "npb fast = reference" `Slow test_npb_fast_equals_reference;
          Alcotest.test_case "npb paranoid clean" `Slow test_npb_paranoid_clean;
        ] );
      ("properties", qsuite);
    ]
