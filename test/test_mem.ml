(* Tests for addresses, physical memory, the Fig.-4 layout and Table-2
   latencies. *)

module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Layout = Stramash_mem.Layout
module Latency = Stramash_mem.Latency
module Node_id = Stramash_sim.Node_id

let checki = Alcotest.(check int)

(* ---------- Addr ---------- *)

let test_addr_basics () =
  checki "page size" 4096 Addr.page_size;
  checki "line size" 64 Addr.line_size;
  checki "page_of" 2 (Addr.page_of 8192);
  checki "page_base" 8192 (Addr.page_base 8200);
  checki "page_offset" 8 (Addr.page_offset 8200);
  checki "line_of" 128 (Addr.line_of 8200);
  checki "gib" (1 lsl 30) (Addr.gib 1)

let test_addr_alignment () =
  checki "align_up already aligned" 4096 (Addr.align_up 4096 ~alignment:4096);
  checki "align_up" 8192 (Addr.align_up 4097 ~alignment:4096);
  checki "align_down" 4096 (Addr.align_down 8191 ~alignment:4096)

let test_lines_spanned () =
  checki "within one line" 1 (Addr.lines_spanned 0 ~len:64);
  checki "straddles" 2 (Addr.lines_spanned 60 ~len:8);
  checki "page" 64 (Addr.lines_spanned 4096 ~len:4096);
  checki "empty" 0 (Addr.lines_spanned 100 ~len:0)

let prop_align_up =
  QCheck.Test.make ~name:"align_up is aligned and minimal" ~count:500
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 12))
    (fun (a, shift) ->
      let alignment = 1 lsl shift in
      let r = Addr.align_up a ~alignment in
      r >= a && r mod alignment = 0 && r - a < alignment)

let prop_lines_spanned =
  QCheck.Test.make ~name:"lines_spanned covers the range" ~count:500
    QCheck.(pair (int_range 0 100_000) (int_range 1 10_000))
    (fun (a, len) ->
      let n = Addr.lines_spanned a ~len in
      Addr.line_of (a + len - 1) - Addr.line_of a + 1 = n)

(* ---------- Phys_mem ---------- *)

let test_phys_rw_widths () =
  let m = Phys_mem.create () in
  Phys_mem.write m 100 ~width:8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Phys_mem.read m 100 ~width:8);
  Alcotest.(check int64) "little-endian low u32" 0x55667788L (Phys_mem.read m 100 ~width:4);
  Alcotest.(check int64) "u16" 0x7788L (Phys_mem.read m 100 ~width:2);
  checki "u8" 0x88 (Phys_mem.read_u8 m 100)

let test_phys_zero_default () =
  let m = Phys_mem.create () in
  Alcotest.(check int64) "unwritten reads 0" 0L (Phys_mem.read_u64 m (Addr.gib 7))

let test_phys_f64 () =
  let m = Phys_mem.create () in
  Phys_mem.write_f64 m 4096 3.14159;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.14159 (Phys_mem.read_f64 m 4096)

let test_phys_copy_and_zero_page () =
  let m = Phys_mem.create () in
  Phys_mem.write_u64 m 4096 99L;
  Phys_mem.write_u64 m 8184 77L;
  Phys_mem.copy_page m ~src:4096 ~dst:16384;
  Alcotest.(check int64) "copied head" 99L (Phys_mem.read_u64 m 16384);
  Alcotest.(check int64) "copied tail" 77L (Phys_mem.read_u64 m (16384 + 4088));
  Phys_mem.zero_page m 16384;
  Alcotest.(check int64) "zeroed" 0L (Phys_mem.read_u64 m 16384)

let test_phys_sparse () =
  let m = Phys_mem.create () in
  Phys_mem.write_u64 m 0 1L;
  Phys_mem.write_u64 m (Addr.gib 6) 2L;
  checki "only touched pages materialise" 2 (Phys_mem.touched_pages m)

let prop_phys_roundtrip =
  QCheck.Test.make ~name:"phys u64 write/read roundtrip" ~count:300
    QCheck.(pair (int_range 0 100_000) int64)
    (fun (slot, v) ->
      let m = Phys_mem.create () in
      let a = slot * 8 in
      Phys_mem.write_u64 m a v;
      Phys_mem.read_u64 m a = v)

(* ---------- Layout ---------- *)

let test_layout_regions () =
  Alcotest.(check bool) "x86 private starts at 0" true (Layout.x86_private.Layout.lo = 0);
  Alcotest.(check bool) "arm private follows" true
    (Layout.arm_private.Layout.lo = Layout.x86_private.Layout.hi);
  checki "message ring is 128MB" (Addr.mib 128) (Layout.region_size Layout.message_ring);
  Alcotest.(check bool) "pool after ring" true (Layout.pool.Layout.lo = Layout.message_ring.Layout.hi);
  checki "total is 8GB" (Addr.gib 8) Layout.total_memory

let loc model node a = Layout.locality model ~node a

let test_layout_fully_shared () =
  List.iter
    (fun node ->
      List.iter
        (fun a ->
          Alcotest.(check bool) "fully shared is always local" true
            (loc Layout.Fully_shared node a = Layout.Local))
        [ 0; Addr.gib 2; Addr.gib 5; Addr.gib 7 ])
    Node_id.all

let test_layout_separated () =
  (* x86 local: [0,1.5G) and [4,6G); arm local: [1.5,3G) and [6,8G). *)
  Alcotest.(check bool) "x86 own private local" true
    (loc Layout.Separated Node_id.X86 0 = Layout.Local);
  Alcotest.(check bool) "x86 sees arm private remote" true
    (loc Layout.Separated Node_id.X86 (Addr.gib 2) = Layout.Remote);
  Alcotest.(check bool) "x86 lower pool half local" true
    (loc Layout.Separated Node_id.X86 (Addr.gib 5) = Layout.Local);
  Alcotest.(check bool) "x86 upper pool half remote" true
    (loc Layout.Separated Node_id.X86 (Addr.gib 7) = Layout.Remote);
  Alcotest.(check bool) "arm upper pool half local" true
    (loc Layout.Separated Node_id.Arm (Addr.gib 7) = Layout.Local)

let test_layout_shared () =
  Alcotest.(check bool) "pool remote for x86" true
    (loc Layout.Shared Node_id.X86 (Addr.gib 5) = Layout.Remote);
  Alcotest.(check bool) "pool remote for arm" true
    (loc Layout.Shared Node_id.Arm (Addr.gib 7) = Layout.Remote);
  Alcotest.(check bool) "private local for owner" true
    (loc Layout.Shared Node_id.Arm (Addr.gib 2) = Layout.Local);
  Alcotest.(check bool) "private remote for other" true
    (loc Layout.Shared Node_id.X86 (Addr.gib 2) = Layout.Remote)

let test_message_ring_detection () =
  Alcotest.(check bool) "ring detected" true (Layout.in_message_ring (Addr.gib 4));
  Alcotest.(check bool) "pool not ring" true (not (Layout.in_message_ring (Addr.gib 5)))

(* ---------- Latency (Table 2) ---------- *)

let test_latency_table2 () =
  let xg = Latency.of_core Latency.Xeon_gold in
  checki "XG L1" 4 xg.Latency.l1;
  checki "XG L2" 14 xg.Latency.l2;
  Alcotest.(check (option int)) "XG L3" (Some 50) xg.Latency.l3;
  checki "XG mem" 300 xg.Latency.mem;
  checki "XG remote" 640 xg.Latency.remote_mem;
  let a72 = Latency.of_core Latency.Cortex_a72 in
  Alcotest.(check (option int)) "A72 has no L3" None a72.Latency.l3;
  checki "A72 remote is the highest" 780 a72.Latency.remote_mem

let test_latency_defaults () =
  Alcotest.(check bool) "x86 default is Xeon Gold" true
    (Latency.default_for_node Node_id.X86 = Latency.of_core Latency.Xeon_gold);
  Alcotest.(check bool) "arm default is ThunderX2" true
    (Latency.default_for_node Node_id.Arm = Latency.of_core Latency.Thunderx2)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_align_up; prop_lines_spanned; prop_phys_roundtrip ]

let () =
  Alcotest.run "mem"
    [
      ( "addr",
        [
          Alcotest.test_case "basics" `Quick test_addr_basics;
          Alcotest.test_case "alignment" `Quick test_addr_alignment;
          Alcotest.test_case "lines_spanned" `Quick test_lines_spanned;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "widths" `Quick test_phys_rw_widths;
          Alcotest.test_case "zero default" `Quick test_phys_zero_default;
          Alcotest.test_case "f64" `Quick test_phys_f64;
          Alcotest.test_case "copy/zero page" `Quick test_phys_copy_and_zero_page;
          Alcotest.test_case "sparse" `Quick test_phys_sparse;
        ] );
      ( "layout",
        [
          Alcotest.test_case "regions" `Quick test_layout_regions;
          Alcotest.test_case "fully shared" `Quick test_layout_fully_shared;
          Alcotest.test_case "separated" `Quick test_layout_separated;
          Alcotest.test_case "shared" `Quick test_layout_shared;
          Alcotest.test_case "message ring" `Quick test_message_ring_detection;
        ] );
      ( "latency",
        [
          Alcotest.test_case "table 2" `Quick test_latency_table2;
          Alcotest.test_case "node defaults" `Quick test_latency_defaults;
        ] );
      ("properties", qsuite);
    ]
