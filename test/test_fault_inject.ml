(* Tests for the fault-injection subsystem: plan determinism and stream
   independence, typed errors at the fault-handler boundary, message
   retry/backoff and IPI-loss recovery, the allocator hotplug path, and
   the kernel-state audit (including a planted double-free). *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Meter = Stramash_sim.Meter
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Vma = Stramash_kernel.Vma
module Process = Stramash_kernel.Process
module Page_table = Stramash_kernel.Page_table
module Frame_alloc = Stramash_kernel.Frame_alloc
module Ipi = Stramash_interconnect.Ipi
module Msg_layer = Stramash_popcorn.Msg_layer
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Audit = Stramash_fault_inject.Audit
module FE = Stramash_harness.Fault_experiments
module B = Stramash_isa.Builder
module Codegen = Stramash_isa.Codegen

let checki = Alcotest.(check int)
let x86 = Node_id.X86
let arm = Node_id.Arm
let vaddr0 = 0x10000000

let make_env () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:x86 ~phys; Kernel.boot ~node:arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = Layout.Shared;
      liveness = Stramash_sim.Liveness.create ();
  }

let trivial_mir () =
  let b = B.create () in
  ignore (B.immi b 0);
  B.finish b

let make_setup ?inject ?global_alloc () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env ?inject () in
  let faults = Stramash_fault.create ?inject ?global_alloc env msg in
  let mir = trivial_mir () in
  let images = List.map (fun isa -> (isa, Codegen.lower ~isa mir)) Node_id.all in
  let proc = Process.create ~pid:1 ~origin:x86 ~mir ~images in
  let mm = Stramash_fault.ensure_mm faults ~proc ~node:x86 in
  ignore (Vma.add mm.Process.vmas ~start:0x10000000 ~end_:0x10100000 Vma.Anon ~writable:true);
  (env, msg, faults, proc)

let silent_walk env proc node vaddr =
  let mm = Process.mm_exn proc node in
  let io =
    {
      Page_table.phys = env.Env.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> assert false);
    }
  in
  Page_table.walk mm.Process.pgtable io ~vaddr

(* ---------- Plan ---------- *)

let mixed_config =
  {
    Plan.default with
    Plan.msg_drop_rate = 0.3;
    msg_delay_rate = 0.2;
    ipi_loss_rate = 0.25;
    walk_fail_rate = 0.15;
    alloc_fail_rate = 0.1;
  }

let msg_trace plan n =
  List.init n (fun _ ->
      match Plan.msg_attempt plan with `Drop -> -1 | `Deliver extra -> extra)

let test_plan_deterministic () =
  let a = Plan.create ~seed:99L mixed_config and b = Plan.create ~seed:99L mixed_config in
  Alcotest.(check (list int)) "same seed, same msg verdicts" (msg_trace a 200) (msg_trace b 200);
  let ipi p =
    List.init 200 (fun _ ->
        match Plan.ipi_delivery p with `On_time -> 0 | `Jitter j -> j | `Lost -> -1)
  in
  Alcotest.(check (list int)) "same seed, same ipi verdicts" (ipi a) (ipi b)

let test_plan_streams_independent () =
  (* Turning another site on (or off) must not shift the message stream:
     each site draws from a private split, and zero-rate sites never draw. *)
  let a = Plan.create ~seed:42L mixed_config in
  let b = Plan.create ~seed:42L { mixed_config with Plan.walk_fail_rate = 0.0; alloc_fail_rate = 0.9 } in
  for _ = 1 to 50 do
    ignore (Plan.walk_read_faulted a);
    ignore (Plan.alloc_denied b)
  done;
  Alcotest.(check (list int)) "msg stream unaffected by other sites" (msg_trace a 200)
    (msg_trace b 200)

let test_backoff_grows () =
  let plan = Plan.create ~seed:1L mixed_config in
  let b0 = Plan.msg_backoff plan ~attempt:0 in
  let b3 = Plan.msg_backoff plan ~attempt:3 in
  Alcotest.(check bool) "backoff positive" true (b0 > 0);
  Alcotest.(check bool) "backoff grows" true (b3 > b0);
  (* the exponent saturates: huge attempt numbers must not overflow *)
  Alcotest.(check bool) "saturated backoff sane" true (Plan.msg_backoff plan ~attempt:1000 > 0)

(* ---------- message retry / escalation ---------- *)

let test_msg_all_drops_escalates_but_completes () =
  let env = make_env () in
  let plan = Plan.create ~seed:5L { Plan.default with Plan.msg_drop_rate = 1.0 } in
  let msg = Msg_layer.create Msg_layer.Shm env ~inject:plan () in
  let ran = ref false in
  Msg_layer.rpc msg ~src:x86 ~label:"ping" ~req_bytes:64 ~resp_bytes:64 ~handler:(fun () ->
      ran := true);
  Alcotest.(check bool) "handler still ran" true !ran;
  let m = Plan.metrics plan in
  Alcotest.(check bool) "drops counted" true (Metrics.get m "msg.drops" > 0);
  Alcotest.(check bool) "retries counted" true (Metrics.get m "msg.retries" > 0);
  Alcotest.(check bool) "escalated to the reliable path" true (Metrics.get m "msg.escalations" > 0);
  (* the sender burned detection timeouts + backoff on every lost attempt *)
  Alcotest.(check bool) "sender paid for the losses" true
    (Meter.get (Env.meter env x86) > Plan.default.Plan.msg_timeout_cycles)

let test_ipi_loss_costs_timeout () =
  let plan = Plan.create ~seed:5L { Plan.default with Plan.ipi_loss_rate = 1.0 } in
  let d = Ipi.cross_isa_delivery ~inject:plan () in
  Alcotest.(check bool) "lost" true d.Ipi.lost;
  checki "receiver discovers it by timeout" (Plan.default.Plan.ipi_timeout_cycles) d.Ipi.cycles;
  let clean = Ipi.cross_isa_delivery () in
  Alcotest.(check bool) "uninjected delivery on time" false clean.Ipi.lost

(* ---------- typed errors ---------- *)

let test_segfault_is_typed_error () =
  let _env, _msg, faults, proc = make_setup () in
  match Stramash_fault.handle_fault faults ~proc ~node:x86 ~vaddr:0xDEAD000 ~write:false with
  | Error (Fault.Segfault { pid; vaddr; _ }) ->
      checki "pid" 1 pid;
      checki "vaddr" 0xDEAD000 vaddr
  | Ok () -> Alcotest.fail "expected a segfault"
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)

let test_injected_faults_are_absorbed () =
  (* Transient walk failures and PTL timeouts degrade to retry/fallback:
     the caller only ever sees [Ok]. *)
  let plan =
    Plan.create ~seed:77L
      { Plan.default with Plan.walk_fail_rate = 0.8; ptl_timeout_rate = 0.5 }
  in
  let env, _msg, faults, proc = make_setup ~inject:plan () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  for page = 0 to 19 do
    match
      Stramash_fault.handle_fault faults ~proc ~node:arm
        ~vaddr:(vaddr0 + (page * Addr.page_size))
        ~write:(page mod 2 = 0)
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "transient fault surfaced: %s" (Fault.to_string e)
  done;
  let m = Plan.metrics plan in
  Alcotest.(check bool) "walk faults fired" true (Metrics.get m "walk.transient_faults" > 0);
  Alcotest.(check bool) "every arm page resolved" true
    (silent_walk env proc arm vaddr0 <> None)

(* ---------- allocator exhaustion -> hotplug ---------- *)

let test_alloc_denial_recovers_via_hotplug () =
  let plan = Plan.create ~seed:21L { Plan.default with Plan.alloc_fail_rate = 1.0 } in
  let env = make_env () in
  let ga = Global_alloc.create env ~rng:(Rng.create ~seed:3L) () in
  let msg = Msg_layer.create Msg_layer.Shm env ~inject:plan () in
  let faults = Stramash_fault.create ~inject:plan ~global_alloc:ga env msg in
  let mir = trivial_mir () in
  let images = List.map (fun isa -> (isa, Codegen.lower ~isa mir)) Node_id.all in
  let proc = Process.create ~pid:1 ~origin:x86 ~mir ~images in
  let mm = Stramash_fault.ensure_mm faults ~proc ~node:x86 in
  ignore (Vma.add mm.Process.vmas ~start:vaddr0 ~end_:(vaddr0 + 0x100000) Vma.Anon ~writable:true);
  (match Stramash_fault.handle_fault faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true with
  | Ok () -> ()
  | Error e -> Alcotest.failf "denial not recovered: %s" (Fault.to_string e));
  let m = Plan.metrics plan in
  Alcotest.(check bool) "denial injected" true (Metrics.get m "alloc.denials" > 0);
  Alcotest.(check bool) "hotplug grant recovered it" true
    (Metrics.get m "alloc.hotplug_recoveries" > 0);
  Alcotest.(check bool) "x86 pulled a pool block online" true (Global_alloc.blocks_owned ga x86 > 0);
  Alcotest.(check bool) "page mapped" true (silent_walk env proc x86 vaddr0 <> None)

let test_alloc_denial_without_global_alloc_is_oom () =
  let plan = Plan.create ~seed:21L { Plan.default with Plan.alloc_fail_rate = 1.0 } in
  let _env, _msg, faults, proc = make_setup ~inject:plan () in
  match Stramash_fault.handle_fault faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true with
  | Error (Fault.Out_of_memory { node }) -> Alcotest.(check string) "node named" "x86" node
  | Ok () -> Alcotest.fail "expected OOM with no hotplug path"
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)

(* ---------- audit ---------- *)

let test_audit_clean_after_faults () =
  let env, _msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  ignore (Stramash_fault.ensure_mm faults ~proc ~node:arm);
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:vaddr0 ~write:false;
  Stramash_fault.handle_fault_exn faults ~proc ~node:arm ~vaddr:(vaddr0 + 4096) ~write:true;
  let report =
    Audit.run ~env ~procs:[ proc ]
      ~extra:[ ("ptl-quiescent", Stramash_fault.ptls_quiescent faults) ]
      ()
  in
  Alcotest.(check bool) "clean" true (Audit.is_clean report);
  Alcotest.(check bool) "checks ran" true (report.Audit.checks > 0)

let test_audit_catches_planted_double_free () =
  let env, _msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  let paddr =
    match silent_walk env proc x86 vaddr0 with
    | Some (pfn, _) -> pfn lsl Addr.page_shift
    | None -> Alcotest.fail "page not mapped"
  in
  (* Plant the bug: free the frame behind the page table's back. *)
  Frame_alloc.free (Env.kernel env x86).Kernel.frames paddr;
  let report = Audit.run ~env ~procs:[ proc ] () in
  Alcotest.(check bool) "audit flags it" false (Audit.is_clean report);
  Alcotest.(check bool) "as a freed-frame mapping" true
    (List.exists (fun v -> v.Audit.check = "frame-allocated") report.Audit.violations)

let test_teardown_check_flags_leak () =
  let env, _msg, faults, proc = make_setup () in
  Stramash_fault.handle_fault_exn faults ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  let mapped = Audit.mapped_frames ~env ~proc in
  checki "one frame tracked" 1 (List.length mapped);
  (* Without running exit_process, both the surviving leaf and the
     still-allocated frame must be flagged. *)
  let report = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
  Alcotest.(check bool) "leak flagged" false (Audit.is_clean report);
  Stramash_fault.exit_process faults ~proc;
  let clean = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
  Alcotest.(check bool) "clean after exit" true (Audit.is_clean clean)

(* ---------- campaign determinism ---------- *)

let render_campaign ~seed ~config =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let clean = FE.campaign fmt ~seed ~bench:"is" ~config () in
  Format.pp_print_flush fmt ();
  (clean, Buffer.contents buf)

let test_campaign_deterministic () =
  let config = FE.plan_config () in
  let c1, out1 = render_campaign ~seed:42L ~config in
  let c2, out2 = render_campaign ~seed:42L ~config in
  Alcotest.(check bool) "clean" true (c1 && c2);
  Alcotest.(check string) "byte-identical output" out1 out2

let test_campaign_survives_heavy_drops () =
  let config = FE.plan_config ~drop_rate:0.5 ~ipi_loss:0.2 ~walk_fail:0.2 () in
  let clean, out = render_campaign ~seed:7L ~config in
  Alcotest.(check bool) "completes with zero violations" true clean;
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "faults actually injected" true (contains "msg.drops")

let () =
  Alcotest.run "fault_inject"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "streams independent" `Quick test_plan_streams_independent;
          Alcotest.test_case "backoff grows" `Quick test_backoff_grows;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "msg drops escalate" `Quick test_msg_all_drops_escalates_but_completes;
          Alcotest.test_case "ipi loss timeout" `Quick test_ipi_loss_costs_timeout;
          Alcotest.test_case "transients absorbed" `Quick test_injected_faults_are_absorbed;
          Alcotest.test_case "alloc denial -> hotplug" `Quick test_alloc_denial_recovers_via_hotplug;
          Alcotest.test_case "alloc denial -> OOM" `Quick test_alloc_denial_without_global_alloc_is_oom;
        ] );
      ( "errors",
        [ Alcotest.test_case "segfault typed" `Quick test_segfault_is_typed_error ] );
      ( "audit",
        [
          Alcotest.test_case "clean state" `Quick test_audit_clean_after_faults;
          Alcotest.test_case "planted double-free" `Quick test_audit_catches_planted_double_free;
          Alcotest.test_case "teardown leak" `Quick test_teardown_check_flags_leak;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "byte-identical replay" `Quick test_campaign_deterministic;
          Alcotest.test_case "heavy drops survive" `Quick test_campaign_survives_heavy_drops;
        ] );
    ]
