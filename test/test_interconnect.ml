(* Tests for IPI latency model, shared-memory rings, and the TCP link. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Layout = Stramash_mem.Layout
module Config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Ipi = Stramash_interconnect.Ipi
module Ring_buffer = Stramash_interconnect.Ring_buffer
module Tcp_link = Stramash_interconnect.Tcp_link
module Heartbeat = Stramash_interconnect.Heartbeat

let checki = Alcotest.(check int)

(* ---------- IPI ---------- *)

let test_ipi_big_pair_mean_2us () =
  List.iter
    (fun m ->
      let rng = Rng.create ~seed:99L in
      let mean = Ipi.matrix_mean_ns (Ipi.matrix rng m) in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean near 2us (got %.0fns)" m.Ipi.name mean)
        true
        (Float.abs (mean -. 2000.0) < 150.0))
    [ Ipi.big_arm; Ipi.big_x86 ]

let test_ipi_self_is_zero () =
  let rng = Rng.create ~seed:1L in
  Alcotest.(check (float 0.0)) "self IPI" 0.0
    (Ipi.pair_latency_ns rng Ipi.big_x86 ~src:3 ~dst:3)

let test_ipi_smt_cheaper_than_cross_socket () =
  let rng = Rng.create ~seed:1L in
  let m = Ipi.big_x86 in
  let avg f =
    let n = 200 in
    let s = ref 0.0 in
    for _ = 1 to n do
      s := !s +. f ()
    done;
    !s /. float_of_int n
  in
  let smt = avg (fun () -> Ipi.pair_latency_ns rng m ~src:0 ~dst:1) in
  let far = avg (fun () -> Ipi.pair_latency_ns rng m ~src:0 ~dst:(m.Ipi.cores - 1)) in
  Alcotest.(check bool) "SMT sibling cheaper than cross-socket" true (smt < far)

let test_cross_isa_constant () =
  checki "2us at 2.1GHz" (Cycles.of_us 2.0) Ipi.cross_isa_ipi_cycles

(* ---------- Ring buffer ---------- *)

let make_ring ?(slots = 8) ?(slot_bytes = 256) () =
  let cache = Cache_sim.create (Config.default Layout.Shared) in
  Ring_buffer.create ~cache ~base:Layout.message_ring.Layout.lo ~slots ~slot_bytes
    ~sender:Node_id.X86

let test_ring_fifo () =
  let ring = make_ring () in
  (match Ring_buffer.send ring ~payload_bytes:16 "a" with Ok _ -> () | Error _ -> assert false);
  (match Ring_buffer.send ring ~payload_bytes:16 "b" with Ok _ -> () | Error _ -> assert false);
  checki "two queued" 2 (Ring_buffer.length ring);
  (match Ring_buffer.recv ring with
  | Some (_, v) -> Alcotest.(check string) "fifo order" "a" v
  | None -> assert false);
  (match Ring_buffer.recv ring with
  | Some (_, v) -> Alcotest.(check string) "fifo order 2" "b" v
  | None -> assert false);
  Alcotest.(check bool) "drained" true (Ring_buffer.recv ring = None)

let test_ring_full () =
  let ring = make_ring ~slots:2 ~slot_bytes:256 () in
  (match Ring_buffer.send ring ~payload_bytes:100 () with Ok _ -> () | Error _ -> assert false);
  (match Ring_buffer.send ring ~payload_bytes:100 () with Ok _ -> () | Error _ -> assert false);
  Alcotest.(check bool) "third send fails" true
    (Ring_buffer.send ring ~payload_bytes:100 () = Error `Full);
  ignore (Ring_buffer.recv ring);
  Alcotest.(check bool) "after recv there is room" true
    (Result.is_ok (Ring_buffer.send ring ~payload_bytes:100 ()))

let test_ring_costs_scale_with_payload () =
  let ring = make_ring ~slots:64 ~slot_bytes:4096 () in
  let cost_of bytes =
    match Ring_buffer.send ring ~payload_bytes:bytes () with
    | Ok c ->
        ignore (Ring_buffer.recv ring);
        c
    | Error _ -> assert false
  in
  let small = cost_of 64 in
  let large = cost_of 4000 in
  Alcotest.(check bool) "bigger payloads cost more" true (large > small)

let test_ring_multislot_messages () =
  let ring = make_ring ~slots:8 ~slot_bytes:256 () in
  (* 1000B payload + header needs several 256B slots *)
  (match Ring_buffer.send ring ~payload_bytes:1000 () with Ok _ -> () | Error _ -> assert false);
  Alcotest.(check bool) "multi-slot send leaves less room" true
    (Ring_buffer.send ring ~payload_bytes:1000 () = Error `Full
    || Ring_buffer.length ring = 1)

(* ---------- TCP ---------- *)

let test_tcp_rtt () =
  let link = Tcp_link.create () in
  let rtt = Tcp_link.round_trip_cycles link ~payload_bytes:0 in
  Alcotest.(check bool) "75us round trip" true
    (Float.abs (Cycles.to_us rtt -. 75.0) < 1.0)

let test_tcp_payload_term () =
  let link = Tcp_link.create () in
  Alcotest.(check bool) "payload adds latency" true
    (Tcp_link.one_way_cycles link ~payload_bytes:65536
    > Tcp_link.one_way_cycles link ~payload_bytes:64)

let test_tcp_custom_rtt () =
  let link = Tcp_link.create ~rtt_us:10.0 () in
  Alcotest.(check bool) "configurable rtt" true
    (Float.abs (Cycles.to_us (Tcp_link.round_trip_cycles link ~payload_bytes:0) -. 10.0) < 0.5)

(* ---------- heartbeat ---------- *)

(* missed_deadlines counts whole intervals: the count (and therefore
   suspicion) flips exactly at the deadline, not one cycle early. *)
let test_heartbeat_deadline_boundary () =
  let hb = Heartbeat.create ~readmit_beats:2 ~interval:100 ~miss_threshold:3 () in
  let peer = Node_id.Arm in
  Heartbeat.beat hb ~node:peer ~now:100;
  checki "two deadlines one cycle before the third" 2
    (Heartbeat.missed_deadlines hb ~peer ~now:399);
  Alcotest.(check bool) "not suspect one cycle early" false
    (Heartbeat.suspects hb ~peer ~now:399);
  checki "third deadline exactly on the boundary" 3
    (Heartbeat.missed_deadlines hb ~peer ~now:400);
  Alcotest.(check bool) "suspect exactly on the deadline" true
    (Heartbeat.suspects hb ~peer ~now:400);
  (* A beat landing exactly one interval after the previous one is
     on-time (boundary inclusive) for the re-admission streak. *)
  Heartbeat.declare_dead hb ~peer ~now:400;
  Heartbeat.beat hb ~node:peer ~now:500;
  Heartbeat.beat hb ~node:peer ~now:600;
  Heartbeat.beat hb ~node:peer ~now:700;
  Alcotest.(check bool) "exact-interval cadence readmits" false
    (Heartbeat.is_suspected hb ~peer)

(* A restart inside the suspicion window must re-earn trust: the first
   beat after the silence only resets the streak, and a late beat breaks
   a streak already in progress. *)
let test_heartbeat_restart_inside_window () =
  let hb = Heartbeat.create ~readmit_beats:2 ~interval:100 ~miss_threshold:3 () in
  let peer = Node_id.X86 in
  Heartbeat.beat hb ~node:peer ~now:50;
  Heartbeat.declare_dead hb ~peer ~now:360;
  Alcotest.(check bool) "suspected after silence" true (Heartbeat.is_suspected hb ~peer);
  Heartbeat.beat hb ~node:peer ~now:460;
  Alcotest.(check bool) "single post-restart beat never readmits" true
    (Heartbeat.is_suspected hb ~peer);
  Heartbeat.beat hb ~node:peer ~now:550;
  Alcotest.(check bool) "streak of one not enough" true (Heartbeat.is_suspected hb ~peer);
  (* Late beat: the streak resets, suspicion survives. *)
  Heartbeat.beat hb ~node:peer ~now:700;
  Alcotest.(check bool) "late beat breaks the streak" true (Heartbeat.is_suspected hb ~peer);
  Heartbeat.beat hb ~node:peer ~now:790;
  Heartbeat.beat hb ~node:peer ~now:880;
  Alcotest.(check bool) "full streak after the reset readmits" false
    (Heartbeat.is_suspected hb ~peer);
  checki "one readmission counted" 1 (Heartbeat.readmissions hb)

let prop_heartbeat_missed_monotone =
  QCheck.Test.make ~name:"missed_deadlines is monotone in now between beats" ~count:300
    QCheck.(
      quad (int_range 1 50) (int_range 0 1000) (int_range 0 2000) (int_range 0 2000))
    (fun (interval, beat_at, a, b) ->
      let hb = Heartbeat.create ~interval ~miss_threshold:3 () in
      let peer = Node_id.Arm in
      Heartbeat.beat hb ~node:peer ~now:beat_at;
      let t1 = min a b and t2 = max a b in
      let m1 = Heartbeat.missed_deadlines hb ~peer ~now:t1 in
      let m2 = Heartbeat.missed_deadlines hb ~peer ~now:t2 in
      m1 >= 0 && m1 <= m2)

let () =
  Alcotest.run "interconnect"
    [
      ( "ipi",
        [
          Alcotest.test_case "big pair mean 2us" `Quick test_ipi_big_pair_mean_2us;
          Alcotest.test_case "self zero" `Quick test_ipi_self_is_zero;
          Alcotest.test_case "topology ordering" `Quick test_ipi_smt_cheaper_than_cross_socket;
          Alcotest.test_case "cross-ISA constant" `Quick test_cross_isa_constant;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "full" `Quick test_ring_full;
          Alcotest.test_case "payload cost" `Quick test_ring_costs_scale_with_payload;
          Alcotest.test_case "multi-slot" `Quick test_ring_multislot_messages;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "rtt" `Quick test_tcp_rtt;
          Alcotest.test_case "payload term" `Quick test_tcp_payload_term;
          Alcotest.test_case "custom rtt" `Quick test_tcp_custom_rtt;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "deadline boundary" `Quick test_heartbeat_deadline_boundary;
          Alcotest.test_case "restart inside window" `Quick test_heartbeat_restart_inside_window;
          QCheck_alcotest.to_alcotest prop_heartbeat_missed_monotone;
        ] );
    ]
