(* Tests for the machine facade and runner: loading, execution, migration,
   fault handling, phase marks, and cross-OS result equality. *)

module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Mir = Stramash_isa.Mir
module B = Stramash_isa.Builder
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Spec = Stramash_machine.Spec
module Thread = Stramash_kernel.Thread

let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

let data_base = Spec.heap_base
let out_slot elems = data_base + (8 * elems) (* first slot after the data *)

(* sum the data array, with an optional migration round trip in between *)
let sum_spec ?(migrate = true) ~elems () =
  let b = B.create () in
  let base = B.immi b data_base in
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed base i ~scale:8) in
      B.add_to b acc acc v);
  if migrate then B.migrate_point b 0;
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed base i ~scale:8) in
      B.add_to b acc acc v);
  if migrate then B.migrate_point b 1;
  let out = B.immi b (out_slot elems) in
  B.store b Mir.W64 acc (Mir.based out);
  {
    Spec.name = "sum";
    description = "test sum";
    mir = B.finish b;
    segments =
      [
        Spec.segment ~base:data_base ~len:(8 * (elems + 16))
          ~init:(Spec.I64s (Array.init elems (fun i -> Int64.of_int (i + 1))))
          ();
      ];
    migration_targets = (if migrate then [ (0, Node_id.Arm); (1, Node_id.X86) ] else []);
  }

let expected elems = Int64.of_int (elems * (elems + 1))

let run_os ?(elems = 512) os =
  let spec = sum_spec ~elems () in
  let machine = Machine.create { Machine.default_config with os } in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  (machine, proc, thread, result)

let test_all_oses_compute_same_result () =
  List.iter
    (fun os ->
      let machine, proc, _, _ = run_os os in
      match Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:(out_slot 512) ~width:8 with
      | Some got -> check64 (Machine.os_choice_name os) (expected 512) got
      | None -> Alcotest.fail "result unmapped")
    Machine.all_os_choices

let test_migration_happens () =
  let _, _, thread, result = run_os Machine.Stramash_kernel_os in
  checki "two migrations" 2 result.Runner.migrations;
  checki "thread migration count" 2 thread.Thread.migrations;
  Alcotest.(check bool) "thread back home" true (Node_id.equal thread.Thread.node Node_id.X86);
  Alcotest.(check bool) "work happened on both nodes" true
    (result.Runner.node_icounts.(0) > 0 && result.Runner.node_icounts.(1) > 0)

let test_vanilla_ignores_migration_points () =
  let _, _, thread, result = run_os Machine.Vanilla in
  checki "no migrations" 0 result.Runner.migrations;
  Alcotest.(check bool) "stays at origin" true (Node_id.equal thread.Thread.node Node_id.X86);
  checki "no arm instructions" 0 result.Runner.node_icounts.(1)

let test_phase_marks_recorded () =
  let _, _, _, result = run_os Machine.Popcorn_shm in
  Alcotest.(check bool) "marks for both points" true
    (List.mem_assoc 0 result.Runner.phase_marks && List.mem_assoc 1 result.Runner.phase_marks);
  Alcotest.(check bool) "span positive" true (Runner.phase_span result ~start:0 ~stop:1 > 0)

let test_clock_sync_on_migration () =
  let _, _, _, result = run_os Machine.Popcorn_shm in
  (* after a round trip the wall clock is the max of the node meters *)
  Alcotest.(check bool) "wall = max node cycles" true
    (result.Runner.wall_cycles = max result.Runner.node_cycles.(0) result.Runner.node_cycles.(1))

let test_ordering_of_oses () =
  let wall os =
    let _, _, _, r = run_os ~elems:4096 os in
    r.Runner.wall_cycles
  in
  let vanilla = wall Machine.Vanilla in
  let stramash = wall Machine.Stramash_kernel_os in
  let shm = wall Machine.Popcorn_shm in
  let tcp = wall Machine.Popcorn_tcp in
  Alcotest.(check bool) "vanilla fastest" true (vanilla < stramash);
  Alcotest.(check bool) "stramash beats popcorn-shm" true (stramash < shm);
  Alcotest.(check bool) "shm beats tcp" true (shm < tcp)

let test_lazy_segments_fault_in () =
  (* a lazy segment is unmapped until written *)
  let b = B.create () in
  let base = B.immi b data_base in
  let v = B.immi b 123 in
  B.store b Mir.W64 v (Mir.based base);
  let spec =
    {
      Spec.name = "lazy";
      description = "";
      mir = B.finish b;
      segments = [ Spec.segment ~base:data_base ~len:4096 ~eager:false () ];
      migration_targets = [];
    }
  in
  let machine = Machine.create { Machine.default_config with os = Machine.Vanilla } in
  let proc, thread = Machine.load machine spec in
  Alcotest.(check (option int64)) "unmapped before run" None
    (Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:data_base ~width:8);
  ignore (Runner.run machine proc thread spec);
  Alcotest.(check (option int64)) "mapped and written after" (Some 123L)
    (Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:data_base ~width:8)

let test_segfault_detected () =
  let b = B.create () in
  let bad = B.immi b 0xDEAD000 in
  ignore (B.load b Mir.W64 (Mir.based bad));
  let spec =
    {
      Spec.name = "segv";
      description = "";
      mir = B.finish b;
      segments = [];
      migration_targets = [];
    }
  in
  let machine = Machine.create { Machine.default_config with os = Machine.Vanilla } in
  let proc, thread = Machine.load machine spec in
  Alcotest.(check bool) "segfault raises the typed error" true
    (try
       ignore (Runner.run machine proc thread spec);
       false
     with Stramash_fault_inject.Fault.Error (Stramash_fault_inject.Fault.Segfault _) -> true)

let test_spawn_thread_entry () =
  let b = B.create () in
  (* main: store 1 then halt *)
  let base = B.immi b data_base in
  let one = B.immi b 1 in
  B.store b Mir.W64 one (Mir.based base);
  B.halt b;
  (* second thread entry: store 2 at +8 *)
  B.migrate_point b 50;
  let base2 = B.immi b data_base in
  let two = B.immi b 2 in
  B.store b Mir.W64 two (Mir.based_disp base2 8);
  let spec =
    {
      Spec.name = "spawn";
      description = "";
      mir = B.finish b;
      segments = [ Spec.segment ~base:data_base ~len:4096 () ];
      migration_targets = [];
    }
  in
  let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
  let proc, t1 = Machine.load machine spec in
  let t2 = Machine.spawn_thread machine proc ~at_point:50 ~node:Node_id.Arm in
  ignore (Runner.run_threads machine proc [ t1; t2 ] spec);
  Alcotest.(check (option int64)) "main wrote" (Some 1L)
    (Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:data_base ~width:8);
  Alcotest.(check (option int64)) "spawned thread wrote" (Some 2L)
    (Machine.read_user machine ~proc ~node:Node_id.Arm ~vaddr:(data_base + 8) ~width:8)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_pp_result_renders () =
  let _, _, _, result = run_os Machine.Stramash_kernel_os in
  let s = Format.asprintf "%a" Runner.pp_result result in
  Alcotest.(check bool) "artifact-style dump mentions hit rates" true
    (contains_substring s "L1 Cache Hit Rate");
  Alcotest.(check bool) "mentions remote memory hits" true
    (contains_substring s "Remote Memory Hits")

(* ---------- multiple processes ---------- *)

let test_two_processes_isolated () =
  List.iter
    (fun os ->
      let machine = Machine.create { Machine.default_config with os } in
      let spec_a = sum_spec ~elems:512 () in
      let spec_b = sum_spec ~elems:256 () in
      let proc_a, th_a = Machine.load machine spec_a in
      let proc_b, th_b = Machine.load machine spec_b in
      ignore (Runner.run_workloads machine [ (spec_a, proc_a, th_a); (spec_b, proc_b, th_b) ]);
      (* overlapping virtual layouts, separate address spaces *)
      (match Machine.read_user machine ~proc:proc_a ~node:Node_id.X86 ~vaddr:(out_slot 512) ~width:8 with
      | Some got -> check64 (Machine.os_choice_name os ^ " proc A") (expected 512) got
      | None -> Alcotest.fail "proc A unmapped");
      match Machine.read_user machine ~proc:proc_b ~node:Node_id.X86 ~vaddr:(out_slot 256) ~width:8 with
      | Some got -> check64 (Machine.os_choice_name os ^ " proc B") (expected 256) got
      | None -> Alcotest.fail "proc B unmapped")
    [ Machine.Vanilla; Machine.Popcorn_shm; Machine.Stramash_kernel_os ]

let test_tids_are_global () =
  let machine = Machine.create Machine.default_config in
  let spec = sum_spec ~elems:64 () in
  let _, th_a = Machine.load machine spec in
  let _, th_b = Machine.load machine spec in
  Alcotest.(check bool) "distinct tids across processes" true
    (th_a.Thread.tid <> th_b.Thread.tid)

(* ---------- process exit & memory recycling (paper §6.4) ---------- *)

let test_exit_recycles_memory () =
  List.iter
    (fun os ->
      let machine = Machine.create { Machine.default_config with os } in
      let spec = sum_spec ~elems:2048 () in
      let before = (Machine.used_frames machine Node_id.X86, Machine.used_frames machine Node_id.Arm) in
      let proc, thread = Machine.load machine spec in
      ignore (Runner.run machine proc thread spec);
      let running = (Machine.used_frames machine Node_id.X86, Machine.used_frames machine Node_id.Arm) in
      Alcotest.(check bool)
        (Machine.os_choice_name os ^ ": pages were allocated")
        true
        (fst running > fst before);
      Machine.exit_process machine proc;
      let after_x86 = Machine.used_frames machine Node_id.X86 in
      let after_arm = Machine.used_frames machine Node_id.Arm in
      (* user pages are gone; only page-table pages and kernel-heap pages
         remain (never recycled, as noted in DESIGN.md) *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: x86 frames recycled (%d -> %d)" (Machine.os_choice_name os)
           (fst running) after_x86)
        true
        (after_x86 < fst running);
      Alcotest.(check bool)
        (Machine.os_choice_name os ^ ": no unmapped leak on arm")
        true
        (after_arm <= snd running))
    [ Machine.Vanilla; Machine.Popcorn_shm; Machine.Stramash_kernel_os ]

let test_exit_frees_remote_owned_pages_at_remote () =
  (* Under Stramash, pages the remote kernel allocated must be freed by
     the remote kernel, not the origin (§6.4). *)
  let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
  let spec = sum_spec ~elems:2048 () in
  let proc, thread = Machine.load machine spec in
  ignore (Runner.run machine proc thread spec);
  let arm_running = Machine.used_frames machine Node_id.Arm in
  Machine.exit_process machine proc;
  Alcotest.(check bool) "arm released its allocations" true
    (Machine.used_frames machine Node_id.Arm <= arm_running)

let () =
  Alcotest.run "machine"
    [
      ( "execution",
        [
          Alcotest.test_case "cross-OS result equality" `Quick test_all_oses_compute_same_result;
          Alcotest.test_case "migration happens" `Quick test_migration_happens;
          Alcotest.test_case "vanilla ignores points" `Quick test_vanilla_ignores_migration_points;
          Alcotest.test_case "phase marks" `Quick test_phase_marks_recorded;
          Alcotest.test_case "clock sync" `Quick test_clock_sync_on_migration;
          Alcotest.test_case "OS cost ordering" `Slow test_ordering_of_oses;
        ] );
      ( "memory",
        [
          Alcotest.test_case "lazy segments" `Quick test_lazy_segments_fault_in;
          Alcotest.test_case "segfault" `Quick test_segfault_detected;
        ] );
      ( "threads",
        [ Alcotest.test_case "spawn entry" `Quick test_spawn_thread_entry ] );
      ( "multiprocess",
        [
          Alcotest.test_case "isolation" `Quick test_two_processes_isolated;
          Alcotest.test_case "global tids" `Quick test_tids_are_global;
        ] );
      ( "exit",
        [
          Alcotest.test_case "recycles memory" `Quick test_exit_recycles_memory;
          Alcotest.test_case "remote frees its pages" `Quick
            test_exit_frees_remote_owned_pages_at_remote;
        ] );
      ("report", [ Alcotest.test_case "pp_result" `Quick test_pp_result_renders ]);
    ]
