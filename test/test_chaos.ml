(* Tests for the crash-stop node-failure model: liveness fencing epochs,
   chaos-schedule validation, the heartbeat watchdog, typed dead-node
   errors, stale-token rejection across restarts (property), checkpoint
   round-trips, futex waiter parking, the extended audit checks, and the
   chaos campaign's determinism and unrecovered-failure edge. *)

module Node_id = Stramash_sim.Node_id
module Liveness = Stramash_sim.Liveness
module Meter = Stramash_sim.Meter
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Vma = Stramash_kernel.Vma
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Page_table = Stramash_kernel.Page_table
module Futex = Stramash_kernel.Futex
module Heartbeat = Stramash_interconnect.Heartbeat
module Ipi = Stramash_interconnect.Ipi
module Msg_layer = Stramash_popcorn.Msg_layer
module Stramash_fault = Stramash_core.Stramash_fault
module Stramash_ptl = Stramash_core.Stramash_ptl
module Checkpoint = Stramash_core.Checkpoint
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Audit = Stramash_fault_inject.Audit
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module FE = Stramash_harness.Fault_experiments
module CE = Stramash_harness.Chaos_experiments
module B = Stramash_isa.Builder
module Codegen = Stramash_isa.Codegen
module Interp = Stramash_isa.Interp

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let x86 = Node_id.X86
let arm = Node_id.Arm
let vaddr0 = 0x10000000

let make_env () =
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:x86 ~phys; Kernel.boot ~node:arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = Layout.Shared;
    liveness = Liveness.create ();
  }

let trivial_mir () =
  let b = B.create () in
  ignore (B.immi b 0);
  B.finish b

let make_setup ?inject () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env ?inject () in
  let faults = Stramash_fault.create ?inject env msg in
  let mir = trivial_mir () in
  let images = List.map (fun isa -> (isa, Codegen.lower ~isa mir)) Node_id.all in
  let proc = Process.create ~pid:1 ~origin:x86 ~mir ~images in
  let mm = Stramash_fault.ensure_mm faults ~proc ~node:x86 in
  ignore (Vma.add mm.Process.vmas ~start:vaddr0 ~end_:(vaddr0 + 0x100000) Vma.Anon ~writable:true);
  (env, msg, faults, proc)

let make_thread ~tid ~node =
  let mir = trivial_mir () in
  let cpu = Interp.create (Codegen.lower ~isa:node mir) in
  let th = Thread.create ~tid ~origin:node ~cpu in
  th.Thread.node <- node;
  th

let silent_walk env proc node vaddr =
  let mm = Process.mm_exn proc node in
  let io =
    {
      Page_table.phys = env.Env.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> assert false);
    }
  in
  Page_table.walk mm.Process.pgtable io ~vaddr

(* ---------- liveness fencing epochs ---------- *)

let test_liveness_epochs () =
  let l = Liveness.create () in
  checkb "initially alive" true (Liveness.all_alive l);
  checki "epoch 0" 0 (Liveness.epoch l x86);
  Liveness.kill l x86 ~at:1000;
  checkb "dead after kill" false (Liveness.is_alive l x86);
  checki "kill bumps epoch" 1 (Liveness.epoch l x86);
  checki "died_at recorded" 1000 (Liveness.died_at l x86);
  checkb "peer unaffected" true (Liveness.is_alive l arm);
  (match Liveness.kill l x86 ~at:1500 with
  | () -> Alcotest.fail "double kill must be rejected"
  | exception Invalid_argument _ -> ());
  Liveness.revive l x86 ~at:4000;
  checkb "alive after revive" true (Liveness.is_alive l x86);
  checki "revive bumps epoch again" 2 (Liveness.epoch l x86);
  checki "downtime accumulated" 3000 (Liveness.downtime l x86);
  checki "one death" 1 (Liveness.deaths l x86);
  checki "arm epoch untouched" 0 (Liveness.epoch l arm)

(* ---------- chaos-schedule validation ---------- *)

let ev node kill_at restart_after = { Plan.node; kill_at; restart_after }

let test_plan_validates_schedule () =
  (* Overlapping kill/restart intervals on one node are malformed. *)
  (match
     Plan.create ~seed:1L
       { Plan.default with Plan.node_events = [ ev x86 100 (Some 1000); ev x86 500 (Some 10) ] }
   with
  | _ -> Alcotest.fail "overlapping events must be rejected"
  | exception Invalid_argument _ -> ());
  (* A kill with no restart must be its node's last event. *)
  (match
     Plan.create ~seed:1L
       { Plan.default with Plan.node_events = [ ev arm 100 None; ev arm 900 (Some 10) ] }
   with
  | _ -> Alcotest.fail "event after a no-restart kill must be rejected"
  | exception Invalid_argument _ -> ());
  (* A valid schedule is normalised to kill order and arms chaos. *)
  let plan =
    Plan.create ~seed:1L
      { Plan.default with Plan.node_events = [ ev arm 900 (Some 50); ev x86 100 (Some 50) ] }
  in
  checkb "chaos armed" true (Plan.chaos_armed plan);
  (match Plan.node_events plan with
  | [ a; b ] ->
      checki "sorted by kill time" 100 a.Plan.kill_at;
      checki "second event" 900 b.Plan.kill_at
  | _ -> Alcotest.fail "expected both events");
  checkb "default plan unarmed" false (Plan.chaos_armed (Plan.create ~seed:1L Plan.default))

(* ---------- heartbeat watchdog ---------- *)

let test_heartbeat_watchdog () =
  let hb = Heartbeat.create ~readmit_beats:2 ~interval:100 ~miss_threshold:3 () in
  checki "detection latency" 300 (Heartbeat.detection_latency hb);
  Heartbeat.beat hb ~node:arm ~now:50;
  checkb "fresh beat, no suspicion" false (Heartbeat.suspects hb ~peer:arm ~now:140);
  checkb "two misses, still trusted" false (Heartbeat.suspects hb ~peer:arm ~now:260);
  checkb "third deadline missed" true (Heartbeat.suspects hb ~peer:arm ~now:360);
  checkb "not latched until declared" false (Heartbeat.is_suspected hb ~peer:arm);
  Heartbeat.declare_dead hb ~peer:arm ~now:360;
  Heartbeat.declare_dead hb ~peer:arm ~now:400;
  checkb "latched" true (Heartbeat.is_suspected hb ~peer:arm);
  checki "idempotent detection count" 1 (Heartbeat.detections hb);
  (* Re-admission is hysteresis-gated: the first beat after the silence
     only resets the streak, and suspicion lifts only after readmit_beats
     consecutive on-time beats. *)
  Heartbeat.beat hb ~node:arm ~now:500;
  checkb "single beat does not clear suspicion" true (Heartbeat.is_suspected hb ~peer:arm);
  Heartbeat.beat hb ~node:arm ~now:580;
  checkb "one on-time beat is not enough" true (Heartbeat.is_suspected hb ~peer:arm);
  Heartbeat.beat hb ~node:arm ~now:660;
  checkb "streak complete clears suspicion" false (Heartbeat.is_suspected hb ~peer:arm);
  checki "readmission counted" 1 (Heartbeat.readmissions hb)

(* ---------- typed dead-node errors ---------- *)

let test_dead_node_message_is_typed () =
  let env = make_env () in
  let plan = Plan.create ~seed:3L Plan.default in
  let msg = Msg_layer.create Msg_layer.Shm env ~inject:plan () in
  Liveness.kill env.Env.liveness arm ~at:100;
  (match
     Msg_layer.rpc_checked msg ~src:x86 ~label:"vma_walk" ~req_bytes:64 ~resp_bytes:64
       ~handler:(fun () -> Alcotest.fail "handler must not run against a dead peer")
   with
  | Error (Fault.Node_dead { node; _ }) -> Alcotest.(check string) "dead node named" "arm" node
  | Ok () -> Alcotest.fail "expected Node_dead"
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e));
  checkb "dead-letter counted" true
    (Metrics.get (Plan.metrics plan) "chaos.dead_node_messages" > 0);
  (* Revived peer serves again. *)
  Liveness.revive env.Env.liveness arm ~at:200;
  (match
     Msg_layer.rpc_checked msg ~src:x86 ~label:"vma_walk" ~req_bytes:64 ~resp_bytes:64
       ~handler:ignore
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revived peer rejected: %s" (Fault.to_string e))

let test_dead_node_ipi_is_typed () =
  let liveness = Liveness.create () in
  Liveness.kill liveness arm ~at:100;
  (match Ipi.cross_isa_delivery_checked ~liveness ~dst:arm () with
  | Error (Fault.Node_dead { node; op }) ->
      Alcotest.(check string) "node" "arm" node;
      Alcotest.(check string) "op" "ipi" op
  | Ok _ -> Alcotest.fail "expected Node_dead"
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e));
  match Ipi.cross_isa_delivery_checked ~liveness ~dst:x86 () with
  | Ok d -> checkb "live target delivered" false d.Ipi.lost
  | Error e -> Alcotest.failf "live target rejected: %s" (Fault.to_string e)

(* ---------- stale lock tokens (property) ---------- *)

(* A token minted before a crash must never exercise the lock again,
   however many kill/revive cycles later it is replayed: every incarnation
   bump leaves the token's epoch behind. *)
let prop_stale_token_never_validates =
  QCheck.Test.make ~name:"pre-crash PTL token is fenced forever" ~count:50
    QCheck.(pair (int_range 1 5) bool)
    (fun (cycles, break_while_down) ->
      let env = make_env () in
      let ptl = Stramash_ptl.create env ~lock_addr:Layout.pool.Layout.lo in
      let token =
        match Stramash_ptl.acquire ptl ~actor:x86 with
        | Ok tok -> tok
        | Error e -> QCheck.Test.fail_reportf "acquire: %s" (Fault.to_string e)
      in
      for i = 1 to cycles do
        let at = i * 1000 in
        Liveness.kill env.Env.liveness x86 ~at;
        if break_while_down && i = 1 then
          ignore (Stramash_ptl.break_dead ptl ~actor:arm);
        Liveness.revive env.Env.liveness x86 ~at:(at + 500)
      done;
      let stale = function
        | Error (Fault.Stale_token { epoch; _ }) ->
            (* the rejected epoch is the token's, not the current one *)
            epoch = token.Stramash_ptl.epoch
        | _ -> false
      in
      stale (Stramash_ptl.reacquire ptl ~token)
      && stale (Stramash_ptl.release ptl ~token)
      && Stramash_ptl.stale_rejections ptl >= 2)

(* ---------- checkpoint round-trip ---------- *)

let test_checkpoint_roundtrip () =
  let env, _msg, faults, proc = make_setup () in
  (* Populate the origin table with a mix of permissions. *)
  for page = 0 to 7 do
    Stramash_fault.handle_fault_exn faults ~proc ~node:x86
      ~vaddr:(vaddr0 + (page * Addr.page_size))
      ~write:(page mod 2 = 0)
  done;
  let before =
    List.map (fun p -> silent_walk env proc x86 (vaddr0 + (p * Addr.page_size))) [ 0; 3; 7 ]
  in
  let image = Checkpoint.capture env ~node:x86 ~procs:[ proc ] ~futexes:[] in
  (match Checkpoint.decode (Checkpoint.encode image) with
  | Ok decoded -> Alcotest.(check bool) "encode/decode round-trips" true (decoded = image)
  | Error e -> Alcotest.failf "decode failed: %s" (Checkpoint.decode_error_to_string e));
  Checkpoint.discard env ~node:x86 ~procs:[ proc ];
  checkb "mm unlinked by discard" true (Process.mm proc x86 = None);
  let stats = Checkpoint.restore env ~procs:[ proc ] image in
  checki "one process restored" 1 stats.Checkpoint.restored_procs;
  checki "all pages restored" 8 stats.Checkpoint.restored_pages;
  let after =
    List.map (fun p -> silent_walk env proc x86 (vaddr0 + (p * Addr.page_size))) [ 0; 3; 7 ]
  in
  Alcotest.(check bool) "same frames and permissions" true (before = after);
  (* The re-materialised state captures back to the identical image. *)
  let again = Checkpoint.capture env ~node:x86 ~procs:[ proc ] ~futexes:[] in
  Alcotest.(check bool) "capture after restore is identical" true (again = image)

(* ---------- death sweep: futex parking and holding-area wakes ---------- *)

let test_death_parks_dead_waiters () =
  let chaos_cfg =
    { Plan.default with Plan.node_events = [ ev arm 1_000_000 (Some 1000) ] }
  in
  let inject = Plan.create ~seed:9L chaos_cfg in
  let env, _msg, faults, proc = make_setup ~inject () in
  let uaddr = vaddr0 + 0x40 in
  let dead_th = make_thread ~tid:7 ~node:arm in
  dead_th.Thread.state <- Thread.Blocked_futex uaddr;
  let live_th = make_thread ~tid:8 ~node:x86 in
  live_th.Thread.state <- Thread.Blocked_futex uaddr;
  let arm_futexes = (Env.kernel env arm).Kernel.futexes in
  Futex.enqueue_waiter arm_futexes ~uaddr ~tid:7;
  Futex.enqueue_waiter arm_futexes ~uaddr ~tid:8;
  Liveness.kill env.Env.liveness arm ~at:500;
  Stramash_fault.on_node_death faults ~procs:[ proc ] ~threads:[ dead_th; live_th ] ~node:arm
    ~now:500;
  (* The dead node's thread parks; the survivor's waiter is requeued to
     the surviving kernel's bucket. *)
  (match Stramash_fault.held_waiters faults with
  | [ f ] ->
      checki "parked tid" 7 f.Checkpoint.f_tid;
      checki "parked uaddr" uaddr f.Checkpoint.f_uaddr
  | l -> Alcotest.failf "expected exactly one parked waiter, got %d" (List.length l));
  checki "survivor waiter requeued to x86" 1
    (Futex.waiter_count (Env.kernel env x86).Kernel.futexes ~uaddr);
  (* A wake while the node is down drains the holding area FIFO. *)
  checki "held waiter woken" 7 (List.hd (Stramash_fault.wake_held faults ~uaddr ~limit:4));
  checkb "holding area now empty" true (Stramash_fault.held_waiters faults = [])

(* ---------- audit: planted violations ---------- *)

let test_audit_catches_ghost_waiter () =
  let env, _msg, _faults, proc = make_setup () in
  Futex.enqueue_waiter (Env.kernel env x86).Kernel.futexes ~uaddr:vaddr0 ~tid:99;
  let report = Audit.run ~env ~procs:[ proc ] ~threads:[] () in
  checkb "ghost waiter flagged" false (Audit.is_clean report);
  checkb "as a futex-waiter violation" true
    (List.exists (fun v -> v.Audit.check = "futex-waiter") report.Audit.violations)

let test_audit_catches_live_thread_in_holding_area () =
  let env, _msg, _faults, proc = make_setup () in
  let th = make_thread ~tid:5 ~node:x86 in
  th.Thread.state <- Thread.Blocked_futex vaddr0;
  (* tid 5's node is alive, so parking it in the holding area is a bug. *)
  let report = Audit.run ~env ~procs:[ proc ] ~threads:[ th ] ~held:[ (vaddr0, 5) ] () in
  checkb "flagged" false (Audit.is_clean report);
  checkb "as a futex-held violation" true
    (List.exists (fun v -> v.Audit.check = "futex-held") report.Audit.violations)

let test_audit_catches_ledger_inconsistency () =
  let env, _msg, _faults, proc = make_setup () in
  (* An orphaned block whose owner is alive contradicts the sweep. *)
  let report =
    Audit.run ~env ~procs:[ proc ] ~ledger:[ (x86, Layout.pool, true) ] ()
  in
  checkb "flagged" false (Audit.is_clean report);
  checkb "as a hotplug-ledger violation" true
    (List.exists (fun v -> v.Audit.check = "hotplug-ledger") report.Audit.violations);
  (* The same block owned by a dead node is exactly right. *)
  Liveness.kill env.Env.liveness x86 ~at:100;
  let ok = Audit.run ~env ~procs:[ proc ] ~ledger:[ (x86, Layout.pool, true) ] () in
  checkb "orphan of a dead owner is clean" true (Audit.is_clean ok)

(* ---------- unrecovered failure: kill with no restart ---------- *)

let test_kill_without_restart_is_unrecovered () =
  let spec = Option.get (FE.spec_of_bench "is") in
  let config =
    { Plan.default with Plan.node_events = [ ev x86 1000 None ] }
  in
  let machine =
    Machine.create
      { Machine.default_config with Machine.os = Machine.Stramash_kernel_os; inject = Some config }
  in
  let proc, thread = Machine.load machine spec in
  match Runner.run machine proc thread spec with
  | _ -> Alcotest.fail "a permanent kill stranding the workload must not complete"
  | exception Fault.Error (Fault.Node_dead { node; _ }) ->
      Alcotest.(check string) "dead node named" "x86" node

(* ---------- chaos campaign: soak + determinism ---------- *)

let render_chaos ~seed =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let verdict = CE.campaign fmt ~seed ~bench:"is" () in
  Format.pp_print_flush fmt ();
  (verdict, Buffer.contents buf)

let contains out sub =
  let n = String.length out and m = String.length sub in
  let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
  go 0

let test_chaos_campaign_deterministic () =
  let v1, out1 = render_chaos ~seed:42L in
  let v2, out2 = render_chaos ~seed:42L in
  checkb "clean verdict" true (v1 = CE.Clean && v2 = CE.Clean);
  Alcotest.(check string) "byte-identical output" out1 out2;
  checkb "kills actually happened" true (contains out1 "chaos.x86.deaths");
  checkb "degraded walks exercised" true (contains out1 "chaos.degraded_walks");
  checkb "downtime metered" true (contains out1 "chaos.downtime_cycles");
  checkb "survivor fingerprint matches" true (contains out1 "(matches baseline)")

let test_exit_codes () =
  checki "clean" 0 (CE.exit_code CE.Clean);
  checki "violations" 1 (CE.exit_code CE.Violations);
  checki "unrecovered" 1 (CE.exit_code CE.Unrecovered);
  checki "unknown bench" 2 (CE.exit_code CE.Unknown_bench);
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  checkb "campaign rejects unknown bench" true
    (CE.campaign fmt ~bench:"nope" () = CE.Unknown_bench)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_stale_token_never_validates ]

let () =
  Alcotest.run "chaos"
    [
      ( "liveness",
        [
          Alcotest.test_case "fencing epochs" `Quick test_liveness_epochs;
          Alcotest.test_case "schedule validation" `Quick test_plan_validates_schedule;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "heartbeat suspicion" `Quick test_heartbeat_watchdog;
          Alcotest.test_case "dead-node message typed" `Quick test_dead_node_message_is_typed;
          Alcotest.test_case "dead-node ipi typed" `Quick test_dead_node_ipi_is_typed;
        ] );
      ("fencing", qsuite);
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip equality" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "death parks waiters" `Quick test_death_parks_dead_waiters;
        ] );
      ( "audit",
        [
          Alcotest.test_case "ghost waiter" `Quick test_audit_catches_ghost_waiter;
          Alcotest.test_case "live thread held" `Quick test_audit_catches_live_thread_in_holding_area;
          Alcotest.test_case "ledger inconsistency" `Quick test_audit_catches_ledger_inconsistency;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "unrecovered kill" `Quick test_kill_without_restart_is_unrecovered;
          Alcotest.test_case "soak determinism" `Slow test_chaos_campaign_deterministic;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
