(* Tests for the Popcorn baseline: messaging layer and DSM protocol. *)

module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Vma = Stramash_kernel.Vma
module Process = Stramash_kernel.Process
module Page_table = Stramash_kernel.Page_table
module Msg_layer = Stramash_popcorn.Msg_layer
module Dsm = Stramash_popcorn.Dsm
module Fault = Stramash_fault_inject.Fault
module Mir = Stramash_isa.Mir
module B = Stramash_isa.Builder
module Codegen = Stramash_isa.Codegen

let checki = Alcotest.(check int)
let x86 = Node_id.X86
let arm = Node_id.Arm

let make_env ?(hw = Layout.Shared) () =
  let cache = Cache_sim.create (Cache_config.default hw) in
  let phys = Phys_mem.create () in
  {
    Env.cache;
    phys;
    kernels = [| Kernel.boot ~node:x86 ~phys; Kernel.boot ~node:arm ~phys |];
    meters = [| Meter.create (); Meter.create () |];
    tlbs = [| Tlb.create (); Tlb.create () |];
    hw_model = hw;
    liveness = Stramash_sim.Liveness.create ();
  }

let trivial_mir () =
  let b = B.create () in
  ignore (B.immi b 0);
  B.finish b

let make_proc env dsm =
  let mir = trivial_mir () in
  let images = List.map (fun isa -> (isa, Codegen.lower ~isa mir)) Node_id.all in
  let proc = Process.create ~pid:1 ~origin:x86 ~mir ~images in
  let mm = Dsm.ensure_mm dsm ~proc ~node:x86 in
  ignore (Vma.add mm.Process.vmas ~start:0x10000000 ~end_:0x10100000 Vma.Anon ~writable:true);
  ignore env;
  proc

(* ---------- Msg_layer ---------- *)

let test_rpc_counts_two_messages () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  Msg_layer.rpc msg ~src:x86 ~label:"ping" ~req_bytes:64 ~resp_bytes:64 ~handler:ignore;
  checki "request + reply" 2 (Msg_layer.message_count msg);
  checki "labelled" 1 (Msg_layer.count_for msg "ping");
  checki "reply labelled" 1 (Msg_layer.count_for msg "ping_reply")

let test_rpc_charges_both_meters () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  Msg_layer.rpc msg ~src:arm ~label:"work" ~req_bytes:64 ~resp_bytes:64 ~handler:(fun () ->
      Meter.add (Env.meter env x86) 1234);
  Alcotest.(check bool) "handler work billed to peer" true (Meter.get (Env.meter env x86) >= 1234);
  Alcotest.(check bool) "requester waits at least the handler + 2 IPIs" true
    (Meter.get (Env.meter env arm)
    >= 1234 + (2 * Stramash_interconnect.Ipi.cross_isa_ipi_cycles))

let test_tcp_slower_than_shm () =
  let cost kind =
    let env = make_env () in
    let msg = Msg_layer.create kind env () in
    Msg_layer.rpc msg ~src:x86 ~label:"x" ~req_bytes:256 ~resp_bytes:256 ~handler:ignore;
    Meter.get (Env.meter env x86)
  in
  Alcotest.(check bool) "tcp rpc dearer than shm rpc" true
    (cost Msg_layer.Tcp > cost Msg_layer.Shm)

let test_notify_does_not_wait () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  Msg_layer.notify msg ~src:x86 ~label:"wake" ~bytes:64 ~handler:(fun () ->
      Meter.add (Env.meter env arm) 1_000_000);
  Alcotest.(check bool) "sender does not absorb handler time" true
    (Meter.get (Env.meter env x86) < 100_000);
  checki "one message" 1 (Msg_layer.message_count msg)

(* ---------- DSM ---------- *)

let vaddr0 = 0x10000000

(* All in-VMA faults must resolve; a typed error here is a test failure. *)
let fault dsm ~proc ~node ~vaddr ~write =
  match Dsm.handle_fault dsm ~proc ~node ~vaddr ~write with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected fault error: %s" (Fault.to_string e)

let walk_frame env dsm proc node vaddr =
  ignore dsm;
  let mm = Process.mm_exn proc node in
  let io =
    {
      Page_table.phys = env.Env.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> assert false);
    }
  in
  Page_table.walk mm.Process.pgtable io ~vaddr

let test_origin_fault_allocates_locally () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  fault dsm ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  (match walk_frame env dsm proc x86 vaddr0 with
  | Some (frame, flags) ->
      Alcotest.(check bool) "frame in x86 memory" true
        (Layout.region_contains Layout.x86_private (frame lsl Addr.page_shift));
      Alcotest.(check bool) "writable" true flags.Stramash_kernel.Pte.writable
  | None -> Alcotest.fail "not mapped");
  checki "no messages for local faults" 0 (Msg_layer.message_count msg);
  checki "no replication" 0 (Dsm.replicated_pages dsm)

let test_remote_read_replicates () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  (* origin writes first -> owner at origin with content *)
  fault dsm ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  (match walk_frame env dsm proc x86 vaddr0 with
  | Some (frame, _) -> Phys_mem.write_u64 env.Env.phys ((frame lsl Addr.page_shift) + 16) 0xABCL
  | None -> assert false);
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  fault dsm ~proc ~node:arm ~vaddr:(vaddr0 + 16) ~write:false;
  checki "one page replicated" 1 (Dsm.replicated_pages dsm);
  (match walk_frame env dsm proc arm vaddr0 with
  | Some (frame, flags) ->
      Alcotest.(check bool) "replica is arm-local" true
        (Layout.region_contains Layout.arm_private (frame lsl Addr.page_shift));
      Alcotest.(check bool) "replica read-only" false flags.Stramash_kernel.Pte.writable;
      Alcotest.(check int64) "content copied" 0xABCL
        (Phys_mem.read_u64 env.Env.phys ((frame lsl Addr.page_shift) + 16))
  | None -> Alcotest.fail "replica not mapped");
  Alcotest.(check bool) "messages exchanged" true (Msg_layer.message_count msg >= 2)

let test_remote_write_takes_ownership () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  fault dsm ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  fault dsm ~proc ~node:arm ~vaddr:vaddr0 ~write:true;
  (* the origin's PTE must now be gone (single-writer protocol) *)
  Alcotest.(check bool) "origin invalidated" true (walk_frame env dsm proc x86 vaddr0 = None);
  (match walk_frame env dsm proc arm vaddr0 with
  | Some (_, flags) -> Alcotest.(check bool) "arm owner writable" true flags.Stramash_kernel.Pte.writable
  | None -> Alcotest.fail "arm not mapped")

let test_upgrade_from_read_copy () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  fault dsm ~proc ~node:x86 ~vaddr:vaddr0 ~write:true;
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  fault dsm ~proc ~node:arm ~vaddr:vaddr0 ~write:false;
  let replicated_before = Dsm.replicated_pages dsm in
  fault dsm ~proc ~node:arm ~vaddr:vaddr0 ~write:true;
  checki "upgrade copies nothing" replicated_before (Dsm.replicated_pages dsm);
  Alcotest.(check bool) "other side invalidated" true (walk_frame env dsm proc x86 vaddr0 = None)

let test_remote_anon_alloc_two_rounds () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  (* fresh page faulted first on the remote: allocation at origin, then
     replication — at least two request/response rounds (4 messages) *)
  fault dsm ~proc ~node:arm ~vaddr:vaddr0 ~write:false;
  Alcotest.(check bool) "two rounds minimum" true (Msg_layer.message_count msg >= 4);
  checki "page_alloc counted" 1 (Msg_layer.count_for msg "page_alloc")

let test_segfault_raises () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  (match Dsm.handle_fault dsm ~proc ~node:x86 ~vaddr:0x666 ~write:false with
  | Error (Fault.Segfault { vaddr; _ }) -> checki "faulting address reported" 0x666 vaddr
  | Ok () -> Alcotest.fail "expected a segfault"
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e))

let test_vma_fetched_remotely () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  fault dsm ~proc ~node:arm ~vaddr:vaddr0 ~write:false;
  checki "vma_req issued once" 1 (Msg_layer.count_for msg "vma_req");
  (* second fault in the same VMA does not refetch it *)
  fault dsm ~proc ~node:arm ~vaddr:(vaddr0 + 8192) ~write:false;
  checki "vma replica cached" 1 (Msg_layer.count_for msg "vma_req")

(* Protocol invariants survive arbitrary fault interleavings. *)
let prop_dsm_invariants =
  QCheck.Test.make ~name:"DSM single-writer invariants under random faults" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 60) (triple bool (int_range 0 15) bool))
    (fun ops ->
      let env = make_env () in
      let msg = Msg_layer.create Msg_layer.Shm env () in
      let dsm = Dsm.create env msg in
      let proc = make_proc env dsm in
      ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
      List.for_all
        (fun (at_arm, page, write) ->
          let node = if at_arm then arm else x86 in
          let vaddr = 0x10000000 + (page * 4096) + 64 in
          fault dsm ~proc ~node ~vaddr ~write;
          match Dsm.check_invariants dsm ~proc with
          | Ok () -> true
          | Error msg -> QCheck.Test.fail_report msg)
        ops)

let test_exit_releases_everything () =
  let env = make_env () in
  let msg = Msg_layer.create Msg_layer.Shm env () in
  let dsm = Dsm.create env msg in
  let proc = make_proc env dsm in
  ignore (Dsm.ensure_mm dsm ~proc ~node:arm);
  let kernel n = Env.kernel env n in
  let used n = Stramash_kernel.Frame_alloc.used_frames (kernel n).Stramash_kernel.Kernel.frames in
  let base = (used x86, used arm) in
  for page = 0 to 9 do
    fault dsm ~proc ~node:x86 ~vaddr:(0x10000000 + (page * 4096)) ~write:true;
    fault dsm ~proc ~node:arm ~vaddr:(0x10000000 + (page * 4096)) ~write:(page mod 2 = 0)
  done;
  Alcotest.(check bool) "pages allocated" true (used x86 > fst base || used arm > snd base);
  Dsm.exit_process dsm ~proc;
  (* all user frames released; only PT/heap pages remain *)
  Alcotest.(check bool) "x86 back to structural baseline" true (used x86 <= fst base + 8);
  Alcotest.(check bool) "arm back to structural baseline" true (used arm <= snd base + 8)

let () =
  Alcotest.run "popcorn"
    [
      ( "msg_layer",
        [
          Alcotest.test_case "rpc counts" `Quick test_rpc_counts_two_messages;
          Alcotest.test_case "meters" `Quick test_rpc_charges_both_meters;
          Alcotest.test_case "tcp slower" `Quick test_tcp_slower_than_shm;
          Alcotest.test_case "notify" `Quick test_notify_does_not_wait;
        ] );
      ( "dsm",
        [
          Alcotest.test_case "origin local fault" `Quick test_origin_fault_allocates_locally;
          Alcotest.test_case "remote read replicates" `Quick test_remote_read_replicates;
          Alcotest.test_case "remote write owns" `Quick test_remote_write_takes_ownership;
          Alcotest.test_case "upgrade" `Quick test_upgrade_from_read_copy;
          Alcotest.test_case "remote anon = 2 rounds" `Quick test_remote_anon_alloc_two_rounds;
          Alcotest.test_case "segfault" `Quick test_segfault_raises;
          Alcotest.test_case "remote vma fetch" `Quick test_vma_fetched_remotely;
          Alcotest.test_case "exit releases frames" `Quick test_exit_releases_everything;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_dsm_invariants ]);
    ]
