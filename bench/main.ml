(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments for the full sweep, or name experiment
   ids; `--list` shows them). `--bechamel` additionally runs wall-clock
   microbenchmarks of the simulator's core primitives. `--perf` measures
   host instructions/sec of the fast-path engine against the reference
   engine on the NPB set and writes BENCH_3.json; with `--domains[=1,2,4]`
   it instead sweeps the host-scaling curve (D replica machines on D
   domains, trace cache on/off) and writes BENCH_6.json. `--serve` runs
   the open-loop serving latency sweep and writes BENCH_7.json. *)

module H = Stramash_harness

let usage () =
  Format.printf
    "usage: main.exe [--list] [--bechamel] [--perf] [--perf --domains[=1,2,4]] [--placement] \
     [--serve] [EXPERIMENT-ID]...@.";
  Format.printf "experiments:@.";
  List.iter
    (fun e -> Format.printf "  %-10s %s@." e.H.Experiments.id e.H.Experiments.title)
    H.Experiments.all

(* ---------- Bechamel microbenchmarks of simulator primitives ---------- *)

let bechamel_tests () =
  let open Bechamel in
  let module Cache_config = Stramash_cache.Config in
  let module Cache_sim = Stramash_cache.Cache_sim in
  let module Layout = Stramash_mem.Layout in
  let module Phys_mem = Stramash_mem.Phys_mem in
  let module Rbtree = Stramash_kernel.Rbtree in
  let module Node_id = Stramash_sim.Node_id in
  let module Rng = Stramash_sim.Rng in
  let module Kernel = Stramash_kernel.Kernel in
  let module Page_table = Stramash_kernel.Page_table in
  let module Pte = Stramash_kernel.Pte in
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let rng = Rng.create ~seed:42L in
  let phys = Phys_mem.create () in
  let tree = Rbtree.create () in
  for i = 0 to 4095 do
    Rbtree.insert tree ~key:(i * 17) i
  done;
  (* warm page table for the walk benchmark *)
  let kernel = Kernel.boot ~node:Node_id.X86 ~phys in
  let pt_io =
    {
      Page_table.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> Kernel.alloc_table_page kernel);
    }
  in
  let pt = Page_table.create ~isa:Node_id.X86 pt_io in
  for page = 0 to 255 do
    Page_table.map pt pt_io ~vaddr:(0x10000000 + (page * 4096)) ~frame:(page + 1) Pte.default_flags
  done;
  (* small interpreter loop for the dispatch benchmark *)
  let interp_prog =
    let module B = Stramash_isa.Builder in
    let b = B.create () in
    let acc = B.immi b 0 in
    B.for_up_const b ~lo:0 ~hi:64 (fun i -> B.add_to b acc acc i);
    Stramash_isa.Codegen.lower ~isa:Node_id.X86 (B.finish b)
  in
  let null_memio =
    { Stramash_isa.Interp.load = (fun _ _ -> 0L); store = (fun _ _ _ -> ()); fetch = ignore }
  in
  (* fast-path primitives vs the reference engine *)
  let cache_ref = Cache_sim.create (Cache_config.default Layout.Shared) in
  Cache_sim.set_mode cache_ref Cache_sim.Reference;
  let module Tlb = Stramash_kernel.Tlb in
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:42 { Tlb.frame = 7; writable = true };
  let counter = ref 0 in
  [
    Test.make ~name:"rng-next_int64" (Staged.stage (fun () -> ignore (Rng.next_int64 rng)));
    Test.make ~name:"cache-l1-hit"
      (Staged.stage (fun () ->
           ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:4096)));
    Test.make ~name:"cache-l1-hit-reference"
      (Staged.stage (fun () ->
           ignore (Cache_sim.access cache_ref ~node:Node_id.X86 Cache_sim.Load ~paddr:4096)));
    Test.make ~name:"tlb-translate-hit"
      (Staged.stage (fun () -> ignore (Tlb.translate tlb ~asid:1 ~vpage:42 ~write:true)));
    Test.make ~name:"cache-stream"
      (Staged.stage (fun () ->
           incr counter;
           let paddr = !counter * 64 land 0xFFFFFF in
           ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr)));
    Test.make ~name:"phys-read_u64" (Staged.stage (fun () -> ignore (Phys_mem.read_u64 phys 8192)));
    Test.make ~name:"rbtree-find"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Rbtree.find tree ~key:(!counter * 17 mod (4096 * 17)))));
    Test.make ~name:"rbtree-floor"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Rbtree.find_floor tree ~key:(!counter land 65535))));
    Test.make ~name:"pagetable-walk"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Page_table.walk pt pt_io ~vaddr:(0x10000000 + (!counter land 255) * 4096))));
    Test.make ~name:"interp-64-iter-loop"
      (Staged.stage (fun () ->
           let cpu = Stramash_isa.Interp.create interp_prog in
           ignore (Stramash_isa.Interp.run cpu null_memio ~fuel:1000)));
  ]

(* ---------- `--perf`: fast-path vs reference instructions/sec ---------- *)

module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Cache_sim = Stramash_cache.Cache_sim
module Json = Stramash_obs.Json
module W = Stramash_workloads

(* One shared workload table (bench, harness, CLI, CI all key on it). *)
let perf_benches () = W.Npb_suite.perf_set ()

(* Pre-fast-path baseline: simulated instructions per host CPU second of
   the tree as of commit cdf6cbd (before the fast-path engine existed),
   measured with this same harness on the reference hardware used for
   BENCH_3.json. The speedup_vs_baseline column compares against these
   fixed numbers; the in-run reference column tracks engine-vs-engine on
   whatever host runs the bench. *)
let baseline_ips =
  [
    ("is", 6_388_848.); ("cg", 9_088_819.); ("mg", 12_519_002.); ("ft", 10_100_272.);
    ("ep", 4_913_968.);
  ]

(* Best-of-N host-CPU-seconds for one full simulated run (the simulator is
   single-threaded, so CPU time is the stable measure). *)
let time_run ~cache_mode spec =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let machine = Machine.create { Machine.default_config with cache_mode } in
    let proc, thread = Machine.load machine spec in
    let t0 = Sys.time () in
    let r = Runner.run machine proc thread spec in
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let run_perf () =
  Format.printf "@.=== Fast-path perf: host instructions/sec, fast vs reference engine ===@.";
  Format.printf "  %-6s %12s %14s %14s %8s %12s@." "bench" "instructions" "reference ips"
    "fast ips" "speedup" "vs baseline";
  let rows =
    List.map
      (fun (name, spec) ->
        let ref_r, ref_t = time_run ~cache_mode:Cache_sim.Reference spec in
        let fast_r, fast_t = time_run ~cache_mode:Cache_sim.Fast spec in
        (* the perf harness doubles as an exactness check: both engines
           must simulate the identical run *)
        if
          fast_r.Runner.wall_cycles <> ref_r.Runner.wall_cycles
          || fast_r.Runner.instructions <> ref_r.Runner.instructions
        then
          failwith
            (Printf.sprintf "%s: fast and reference runs diverged (wall %d vs %d, instr %d vs %d)"
               name fast_r.Runner.wall_cycles ref_r.Runner.wall_cycles fast_r.Runner.instructions
               ref_r.Runner.instructions);
        let instr = fast_r.Runner.instructions in
        let ips t = float_of_int instr /. t in
        let speedup = ref_t /. fast_t in
        let vs_baseline =
          match List.assoc_opt name baseline_ips with
          | Some b -> ips fast_t /. b
          | None -> nan
        in
        Format.printf "  %-6s %12d %14.0f %14.0f %7.2fx %11.2fx@." name instr (ips ref_t)
          (ips fast_t) speedup vs_baseline;
        (name, instr, ref_t, fast_t, speedup, vs_baseline))
      (perf_benches ())
  in
  let geomean =
    exp
      (List.fold_left (fun acc (_, _, _, _, s, _) -> acc +. log s) 0.0 rows
      /. float_of_int (List.length rows))
  in
  Format.printf "  geomean speedup (vs in-run reference engine): %.2fx@." geomean;
  let json =
    Json.Obj
      [
        ("schema", Json.String "stramash-bench/3");
        ("metric", Json.String "simulated instructions per host cpu second");
        ( "baseline",
          Json.String
            "pre-fast-path tree (commit cdf6cbd) measured with this harness; see baseline_ips" );
        ( "benchmarks",
          Json.List
            (List.map
               (fun (name, instr, ref_t, fast_t, speedup, vs_baseline) ->
                 Json.Obj
                   [
                     ("bench", Json.String name);
                     ("instructions", Json.Int instr);
                     ("reference_seconds", Json.Float ref_t);
                     ("fast_seconds", Json.Float fast_t);
                     ("reference_ips", Json.Float (float_of_int instr /. ref_t));
                     ("fast_ips", Json.Float (float_of_int instr /. fast_t));
                     ( "baseline_ips",
                       match List.assoc_opt name baseline_ips with
                       | Some b -> Json.Float b
                       | None -> Json.Null );
                     ("speedup", Json.Float speedup);
                     ("speedup_vs_baseline", Json.Float vs_baseline);
                   ])
               rows) );
        ("geomean_speedup", Json.Float geomean);
      ]
  in
  let oc = open_out "BENCH_3.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "  wrote BENCH_3.json@."

(* ---------- `--domains`: host-scaling curve, BENCH_6.json ---------- *)

module Domain_pool = Stramash_sim.Domain_pool

(* Committed BENCH_3.json fast_ips: the fixed yardstick the scaling curve
   is normalised against, copied from the checked-in file so a BENCH_6
   run never needs (or clobbers) BENCH_3. *)
let bench3_fast_ips =
  [
    ("is", 12_061_166.2673); ("cg", 13_362_351.7243); ("mg", 22_995_571.454);
    ("ft", 21_276_597.3259); ("ep", 7_680_710.53482);
  ]

(* Aggregate throughput of D fingerprint-identical replica machines, one
   per domain slot: wall-clock is the right denominator here (the whole
   point is host parallelism), instructions the numerator is D times one
   replica's count. Every replica must simulate the identical run — the
   determinism half of the scaling claim — so divergence is fatal, not a
   warning. *)
let time_domains ~domains ~trace_cache spec =
  let replica () =
    let machine =
      Machine.create
        { Machine.default_config with cache_mode = Cache_sim.Fast; trace_cache }
    in
    let proc, thread = Machine.load machine spec in
    let r = Runner.run machine proc thread spec in
    (r.Runner.wall_cycles, r.Runner.instructions)
  in
  let instr = ref 0 in
  let best = ref infinity in
  for _ = 1 to 2 do
    let t0 = Unix.gettimeofday () in
    let results = Domain_pool.map ~domains (Array.init domains (fun _ -> replica)) in
    let dt = Unix.gettimeofday () -. t0 in
    let w0, i0 = results.(0) in
    Array.iteri
      (fun i (w, ic) ->
        if w <> w0 || ic <> i0 then
          failwith
            (Printf.sprintf "replica %d diverged from replica 0 (wall %d vs %d, instr %d vs %d)"
               i w w0 ic i0))
      results;
    instr := i0;
    if dt < !best then best := dt
  done;
  (!instr, !best)

let run_perf6 domains_list =
  Format.printf
    "@.=== Host scaling: aggregate simulated instructions per host wall second ===@.";
  Format.printf "  (D replica machines via Domain_pool; host has %d cores)@."
    (Domain.recommended_domain_count ());
  Format.printf "  %-6s %4s %12s %14s %14s %8s %12s@." "bench" "D" "instructions" "tc-on ips"
    "tc-off ips" "tc gain" "vs BENCH_3";
  let rows =
    List.map
      (fun (name, spec) ->
        let cells =
          List.map
            (fun domains ->
              let instr, t_on = time_domains ~domains ~trace_cache:true spec in
              let _, t_off = time_domains ~domains ~trace_cache:false spec in
              let agg t = float_of_int (domains * instr) /. t in
              let vs_b3 =
                match List.assoc_opt name bench3_fast_ips with
                | Some b -> agg t_on /. b
                | None -> nan
              in
              Format.printf "  %-6s %4d %12d %14.0f %14.0f %7.2fx %11.2fx@." name domains instr
                (agg t_on) (agg t_off) (t_off /. t_on) vs_b3;
              (domains, instr, t_on, t_off, vs_b3))
            domains_list
        in
        (name, cells))
      (perf_benches ())
  in
  let max_d = List.fold_left max 1 domains_list in
  (* The headline number (and CI's regression signal): geomean over the
     suite of tc-on aggregate ips at the widest D, against the committed
     BENCH_3 fast_ips. *)
  let geomean =
    let logs =
      List.filter_map
        (fun (_, cells) ->
          List.find_map
            (fun (d, _, _, _, vs) -> if d = max_d then Some (log vs) else None)
            cells)
        rows
    in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  Format.printf "  geomean vs committed BENCH_3 fast_ips at %d domains, trace cache on: %.2fx@."
    max_d geomean;
  let json =
    Json.Obj
      [
        ("schema", Json.String "stramash-bench/6");
        ( "metric",
          Json.String
            "aggregate simulated instructions per host wall second across D replica machines" );
        ( "baseline",
          Json.String "committed BENCH_3.json fast_ips (fixed copy; see bench3_fast_ips)" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("domains", Json.List (List.map (fun d -> Json.Int d) domains_list));
        ( "benchmarks",
          Json.List
            (List.map
               (fun (name, cells) ->
                 Json.Obj
                   [
                     ("bench", Json.String name);
                     ( "baseline_fast_ips",
                       match List.assoc_opt name bench3_fast_ips with
                       | Some b -> Json.Float b
                       | None -> Json.Null );
                     ( "curve",
                       Json.List
                         (List.map
                            (fun (domains, instr, t_on, t_off, vs) ->
                              let agg t = float_of_int (domains * instr) /. t in
                              Json.Obj
                                [
                                  ("domains", Json.Int domains);
                                  ("instructions_per_replica", Json.Int instr);
                                  ("tc_on_wall_seconds", Json.Float t_on);
                                  ("tc_off_wall_seconds", Json.Float t_off);
                                  ("tc_on_ips", Json.Float (agg t_on));
                                  ("tc_off_ips", Json.Float (agg t_off));
                                  ("trace_cache_gain", Json.Float (t_off /. t_on));
                                  ("vs_bench3_fast_ips", Json.Float vs);
                                ])
                            cells) );
                   ])
               rows) );
        ("geomean_vs_bench3", Json.Float geomean);
      ]
  in
  let oc = open_out "BENCH_6.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "  wrote BENCH_6.json@."

(* ---------- `--placement`: adaptive vs static placement, BENCH_5.json ---------- *)

module Policy = Stramash_placement.Policy
module Engine = Stramash_placement.Engine

(* Simulated wall cycles (not host time): placement quality is a
   simulated-performance claim. Each Stramash config runs under one
   policy; Popcorn-SHM is the normalisation reference the paper's CG
   crossover is stated against. *)
let run_placement () =
  Format.printf "@.=== Page placement: adaptive vs static, wall cycles vs Popcorn-SHM ===@.";
  Format.printf "  %-6s %12s %16s %16s %16s@." "bench" "shm wall" "static-stramash"
    "adaptive" "static-shm";
  let policies =
    [
      ("static_stramash", Policy.Static_stramash);
      ("adaptive", Policy.Adaptive);
      ("static_shm", Policy.Static_shm);
    ]
  in
  let rows =
    List.map
      (fun bench ->
        let spec = Option.get (H.Placement_experiments.full_spec_of_bench bench) in
        let shm = H.Placement_experiments.run_shm spec in
        let shm_wall = shm.Runner.wall_cycles in
        let cells =
          List.map
            (fun (label, policy) ->
              let machine, engine, proc, result =
                H.Placement_experiments.run_policy ~policy spec
              in
              let counters = Engine.counters engine in
              Machine.exit_process machine proc;
              (label, result.Runner.wall_cycles, counters))
            policies
        in
        let speedup wall = float_of_int shm_wall /. float_of_int wall in
        let cell label =
          let _, wall, _ = List.find (fun (l, _, _) -> l = label) cells in
          Printf.sprintf "%5.2fx" (speedup wall)
        in
        Format.printf "  %-6s %12d %16s %16s %16s@." bench shm_wall (cell "static_stramash")
          (cell "adaptive") (cell "static_shm");
        (bench, shm_wall, cells))
      [ "is"; "cg"; "ft" ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String "stramash-bench/5");
        ("metric", Json.String "simulated wall cycles; speedup = shm_wall / wall");
        ( "reference",
          Json.String "popcorn-shm on the same full-size spec, seed and hardware model" );
        ( "benchmarks",
          Json.List
            (List.map
               (fun (bench, shm_wall, cells) ->
                 Json.Obj
                   [
                     ("bench", Json.String bench);
                     ("shm_wall_cycles", Json.Int shm_wall);
                     ( "configs",
                       Json.Obj
                         (List.map
                            (fun (label, wall, counters) ->
                              ( label,
                                Json.Obj
                                  [
                                    ("wall_cycles", Json.Int wall);
                                    ( "speedup_vs_shm",
                                      Json.Float (float_of_int shm_wall /. float_of_int wall) );
                                    ( "counters",
                                      Json.Obj
                                        (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
                                  ] ))
                            cells) );
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_5.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "  wrote BENCH_5.json@."

(* ---------- `--serve`: open-loop serving latency, BENCH_7.json ---------- *)

module Serve = Stramash_serve.Serve
module Slo = Stramash_serve.Slo
module Histogram = Stramash_sim.Metrics.Histogram

(* Two offered loads over the full 2^20-key store: 10k req/s sits below
   every personality's capacity (latency is service time plus mild
   queueing); 20k req/s is comfortable for Stramash but beyond
   Popcorn-SHM's capacity, so the open-loop harness shows Popcorn's
   queue diverging while Stramash holds its SLO at the same load. *)
let serve_rates = [ 10_000.0; 20_000.0 ]

let serve_base = { Serve.default with keys = 1 lsl 20; requests = 20_000 }

let serve_hist_json h =
  let us c = Json.Float (Slo.cycles_to_us c) in
  Json.Obj
    [
      ("n", Json.Int (Histogram.count h));
      ("p50_us", us (Histogram.p50 h));
      ("p95_us", us (Histogram.p95 h));
      ("p99_us", us (Histogram.p99 h));
      ("mean_us", us (Histogram.mean h));
      ("max_us", us (Histogram.max_value h));
    ]

let run_serve () =
  Format.printf "@.=== Open-loop serving: per-op latency vs arrival rate ===@.";
  Format.printf "  (latency = completion - scheduled arrival; %d Zipfian keys, theta %.2f)@."
    serve_base.Serve.keys serve_base.Serve.theta;
  let configs =
    [
      ("popcorn-shm", { serve_base with Serve.os = Machine.Popcorn_shm });
      ("stramash", serve_base);
      ("stramash+placement", { serve_base with Serve.placement = true });
    ]
  in
  let rate_rows =
    List.map
      (fun rate ->
        Format.printf "  rate %.0f req/s, %d requests:@." rate serve_base.Serve.requests;
        let cells =
          List.map
            (fun (label, cfg) ->
              let outcome = Serve.run { cfg with Serve.rate } in
              let us c = Slo.cycles_to_us c in
              let all = outcome.Serve.o_all in
              Format.printf "    %-20s p50 %7.1fus  p95 %7.1fus  p99 %7.1fus  max %8.1fus  slo %s@."
                label (us (Histogram.p50 all)) (us (Histogram.p95 all)) (us (Histogram.p99 all))
                (us (Histogram.max_value all))
                (if outcome.Serve.o_slo.Slo.pass then "pass" else "FAIL");
              (label, outcome))
            configs
        in
        (rate, cells))
      serve_rates
  in
  let slo = serve_base.Serve.slo in
  let json =
    Json.Obj
      [
        ("schema", Json.String "stramash-bench/7");
        ( "metric",
          Json.String
            "open-loop request latency in microseconds: completion minus scheduled arrival, so \
             queueing delay is included and coordinated omission is impossible" );
        ("keys", Json.Int serve_base.Serve.keys);
        ("theta", Json.Float serve_base.Serve.theta);
        ("requests", Json.Int serve_base.Serve.requests);
        ("payload_bytes", Json.Int serve_base.Serve.payload);
        ("seed", Json.String (Int64.to_string serve_base.Serve.seed));
        ( "slo_us",
          Json.Obj
            [
              ("p50", Json.Float slo.Slo.p50_us);
              ("p95", Json.Float slo.Slo.p95_us);
              ("p99", Json.Float slo.Slo.p99_us);
            ] );
        ( "rates",
          Json.List
            (List.map
               (fun (rate, cells) ->
                 Json.Obj
                   [
                     ("rate_rps", Json.Float rate);
                     ( "configs",
                       Json.Obj
                         (List.map
                            (fun (label, outcome) ->
                              ( label,
                                Json.Obj
                                  [
                                    ("slo_pass", Json.Bool outcome.Serve.o_slo.Slo.pass);
                                    ( "ops",
                                      Json.Obj
                                        (List.map
                                           (fun (op, h) -> (op, serve_hist_json h))
                                           (outcome.Serve.o_rows
                                           @ [ ("all", outcome.Serve.o_all) ])) );
                                  ] ))
                            cells) );
                   ])
               rate_rows) );
      ]
  in
  let oc = open_out "BENCH_7.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "  wrote BENCH_7.json@."

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "@.=== Bechamel primitive microbenchmarks ===@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "  %-24s %10.1f ns/op@." name est
          | Some [] | None -> Format.printf "  %-24s (no estimate)@." name)
        analyzed)
    (bechamel_tests ())

let () =
  (* The interpreter's Int64 register file allocates on every write; a
     larger minor heap keeps that churn out of the collector's way. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
  let args = List.tl (Array.to_list Sys.argv) in
  let is_flag a = String.length a > 2 && String.sub a 0 2 = "--" in
  let flags, ids = List.partition is_flag args in
  if List.mem "--help" flags || List.mem "--list" flags then usage ()
  else begin
    let fmt = Format.std_formatter in
    (* --domains[=1,2,4] switches --perf from the single-host BENCH_3
       measurement to the BENCH_6 host-scaling sweep. *)
    let domains_list =
      List.find_map
        (fun flag ->
          if flag = "--domains" then Some [ 1; 2; 4 ]
          else
            match String.length flag > 10 && String.sub flag 0 10 = "--domains=" with
            | true ->
                Some
                  (String.sub flag 10 (String.length flag - 10)
                  |> String.split_on_char ','
                  |> List.map (fun s ->
                         match int_of_string_opt (String.trim s) with
                         | Some d when d >= 1 -> d
                         | _ -> failwith (Printf.sprintf "bad --domains value %S" s)))
            | false -> None)
        flags
    in
    (match ids with
    | []
      when List.mem "--perf" flags || List.mem "--bechamel" flags
           || List.mem "--placement" flags || List.mem "--serve" flags || domains_list <> None ->
        ()
    | [] -> H.Experiments.run_all fmt
    | ids ->
        List.iter
          (fun id ->
            match H.Experiments.find id with
            | Some e ->
                Format.fprintf fmt "@.=============== %s: %s ===============@."
                  e.H.Experiments.id e.H.Experiments.title;
                e.H.Experiments.run fmt
            | None ->
                Format.fprintf fmt "unknown experiment %s@." id;
                usage ())
          ids);
    (match domains_list with
    | Some domains -> run_perf6 domains
    | None -> if List.mem "--perf" flags then run_perf ());
    if List.mem "--placement" flags then run_placement ();
    if List.mem "--serve" flags then run_serve ();
    if List.mem "--bechamel" flags then run_bechamel ()
  end
