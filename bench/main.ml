(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments for the full sweep, or name experiment
   ids; `--list` shows them). `--bechamel` additionally runs wall-clock
   microbenchmarks of the simulator's core primitives. *)

module H = Stramash_harness

let usage () =
  Format.printf "usage: main.exe [--list] [--bechamel] [EXPERIMENT-ID]...@.";
  Format.printf "experiments:@.";
  List.iter
    (fun e -> Format.printf "  %-10s %s@." e.H.Experiments.id e.H.Experiments.title)
    H.Experiments.all

(* ---------- Bechamel microbenchmarks of simulator primitives ---------- *)

let bechamel_tests () =
  let open Bechamel in
  let module Cache_config = Stramash_cache.Config in
  let module Cache_sim = Stramash_cache.Cache_sim in
  let module Layout = Stramash_mem.Layout in
  let module Phys_mem = Stramash_mem.Phys_mem in
  let module Rbtree = Stramash_kernel.Rbtree in
  let module Node_id = Stramash_sim.Node_id in
  let module Rng = Stramash_sim.Rng in
  let module Kernel = Stramash_kernel.Kernel in
  let module Page_table = Stramash_kernel.Page_table in
  let module Pte = Stramash_kernel.Pte in
  let cache = Cache_sim.create (Cache_config.default Layout.Shared) in
  let rng = Rng.create ~seed:42L in
  let phys = Phys_mem.create () in
  let tree = Rbtree.create () in
  for i = 0 to 4095 do
    Rbtree.insert tree ~key:(i * 17) i
  done;
  (* warm page table for the walk benchmark *)
  let kernel = Kernel.boot ~node:Node_id.X86 ~phys in
  let pt_io =
    {
      Page_table.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> Kernel.alloc_table_page kernel);
    }
  in
  let pt = Page_table.create ~isa:Node_id.X86 pt_io in
  for page = 0 to 255 do
    Page_table.map pt pt_io ~vaddr:(0x10000000 + (page * 4096)) ~frame:(page + 1) Pte.default_flags
  done;
  (* small interpreter loop for the dispatch benchmark *)
  let interp_prog =
    let module B = Stramash_isa.Builder in
    let b = B.create () in
    let acc = B.immi b 0 in
    B.for_up_const b ~lo:0 ~hi:64 (fun i -> B.add_to b acc acc i);
    Stramash_isa.Codegen.lower ~isa:Node_id.X86 (B.finish b)
  in
  let null_memio =
    { Stramash_isa.Interp.load = (fun _ _ -> 0L); store = (fun _ _ _ -> ()); fetch = ignore }
  in
  let counter = ref 0 in
  [
    Test.make ~name:"rng-next_int64" (Staged.stage (fun () -> ignore (Rng.next_int64 rng)));
    Test.make ~name:"cache-l1-hit"
      (Staged.stage (fun () ->
           ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr:4096)));
    Test.make ~name:"cache-stream"
      (Staged.stage (fun () ->
           incr counter;
           let paddr = !counter * 64 land 0xFFFFFF in
           ignore (Cache_sim.access cache ~node:Node_id.X86 Cache_sim.Load ~paddr)));
    Test.make ~name:"phys-read_u64" (Staged.stage (fun () -> ignore (Phys_mem.read_u64 phys 8192)));
    Test.make ~name:"rbtree-find"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Rbtree.find tree ~key:(!counter * 17 mod (4096 * 17)))));
    Test.make ~name:"rbtree-floor"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Rbtree.find_floor tree ~key:(!counter land 65535))));
    Test.make ~name:"pagetable-walk"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Page_table.walk pt pt_io ~vaddr:(0x10000000 + (!counter land 255) * 4096))));
    Test.make ~name:"interp-64-iter-loop"
      (Staged.stage (fun () ->
           let cpu = Stramash_isa.Interp.create interp_prog in
           ignore (Stramash_isa.Interp.run cpu null_memio ~fuel:1000)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "@.=== Bechamel primitive microbenchmarks ===@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "  %-24s %10.1f ns/op@." name est
          | Some [] | None -> Format.printf "  %-24s (no estimate)@." name)
        analyzed)
    (bechamel_tests ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let is_flag a = String.length a > 2 && String.sub a 0 2 = "--" in
  let flags, ids = List.partition is_flag args in
  if List.mem "--help" flags || List.mem "--list" flags then usage ()
  else begin
    let fmt = Format.std_formatter in
    (match ids with
    | [] -> H.Experiments.run_all fmt
    | ids ->
        List.iter
          (fun id ->
            match H.Experiments.find id with
            | Some e ->
                Format.fprintf fmt "@.=============== %s: %s ===============@."
                  e.H.Experiments.id e.H.Experiments.title;
                e.H.Experiments.run fmt
            | None ->
                Format.fprintf fmt "unknown experiment %s@." id;
                usage ())
          ids);
    if List.mem "--bechamel" flags then run_bechamel ()
  end
