(* Quickstart: build a tiny workload in Mir, run it on the simulated
   heterogeneous-ISA platform under each OS personality, and compare the
   cross-ISA migration cost.

   The program sums a 64 KB array twice, migrating from the x86 island to
   the Arm island between the two passes and back afterwards — a miniature
   of the paper's NPB offloading pattern. *)

module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Node_id = Stramash_sim.Node_id
module Spec = Stramash_machine.Spec
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner

let array_base = Spec.heap_base
let elems = 8192 (* 64 KB of int64 *)

let program () =
  let b = B.create () in
  let base = B.immi b array_base in
  let acc = B.immi b 0 in
  (* Pass 1 on the origin (x86): sequential sum. *)
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed base i ~scale:8) in
      B.add_to b acc acc v);
  (* Migrate to Arm for pass 2, then come home. *)
  B.migrate_point b 0;
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed base i ~scale:8) in
      B.add_to b acc acc v);
  B.migrate_point b 1;
  (* Store the result so it is observable in simulated memory. *)
  let out = B.immi b (array_base + (8 * elems)) in
  B.store b Mir.W64 acc (Mir.based out);
  B.finish b

let spec () =
  {
    Spec.name = "quickstart-sum";
    description = "two-pass array sum with one round-trip migration";
    mir = program ();
    segments =
      [
        Spec.segment ~base:array_base
          ~len:((elems + 1) * 8)
          ~init:(Spec.I64s (Array.init elems Int64.of_int))
          ();
      ];
    migration_targets = [ (0, Node_id.Arm); (1, Node_id.X86) ];
  }

let () =
  let spec = spec () in
  Format.printf "workload: %s — %s@.@." spec.Spec.name spec.Spec.description;
  List.iter
    (fun os ->
      let machine = Machine.create { Machine.default_config with os } in
      let proc, thread = Machine.load machine spec in
      let result = Runner.run machine proc thread spec in
      Format.printf "%-12s  wall=%8.3f ms  instructions=%9d  migrations=%d  messages=%4d  replicated pages=%d@."
        (Machine.os_choice_name os)
        (Stramash_sim.Cycles.to_ms result.Runner.wall_cycles)
        result.Runner.instructions result.Runner.migrations result.Runner.messages
        result.Runner.replicated_pages)
    Machine.all_os_choices;
  Format.printf
    "@.Expected shape: vanilla fastest (no migration); popcorn-tcp slowest (75us message RTTs);@.";
  Format.printf "stramash between vanilla and popcorn-shm (no page replication).@."
