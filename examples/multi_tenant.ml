(* Multi-tenant demo: two applications share the two-kernel platform at
   once. Process A (an IS-like sort) and process B (a CG-like solver) both
   migrate between the ISA islands while running; the scheduler interleaves
   them by simulated time, so threads resident on the same node serialise
   on that node's core.

   Both results are checked against the host-computed references — the
   kernels' address spaces stay isolated even while their kernel instances
   share state. *)

module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads

let () =
  let is_params = { W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } in
  let cg_params = { W.Npb_cg.n = 4096; row_nnz = 8; iterations = 3 } in
  let is_spec = W.Npb_is.spec ~params:is_params () in
  let cg_spec = W.Npb_cg.spec ~params:cg_params () in
  List.iter
    (fun os ->
      let machine = Machine.create { Machine.default_config with os } in
      let is_proc, is_thread = Machine.load machine is_spec in
      let cg_proc, cg_thread = Machine.load machine cg_spec in
      let result =
        Runner.run_workloads machine
          [ (is_spec, is_proc, is_thread); (cg_spec, cg_proc, cg_thread) ]
      in
      let is_ok =
        Machine.read_user machine ~proc:is_proc ~node:Node_id.X86
          ~vaddr:W.Npb_common.checksum_vaddr ~width:8
        = Some (W.Npb_is.expected_checksum is_params)
      in
      let cg_ok =
        Machine.read_user machine ~proc:cg_proc ~node:Node_id.X86
          ~vaddr:W.Npb_common.checksum_vaddr ~width:8
        = Some (Int64.bits_of_float (W.Npb_cg.expected_checksum cg_params))
      in
      Format.printf
        "%-12s  wall=%8.3f ms  instr=%8d  msgs=%6d  IS:%s CG:%s  (x86 used=%5d arm used=%5d frames)@."
        (Machine.os_choice_name os)
        (Cycles.to_ms result.Runner.wall_cycles)
        result.Runner.instructions result.Runner.messages
        (if is_ok then "ok" else "BAD")
        (if cg_ok then "ok" else "BAD")
        (Machine.used_frames machine Node_id.X86)
        (Machine.used_frames machine Node_id.Arm);
      (* tear both down; the kernels recycle the memory (§6.4) *)
      Machine.exit_process machine is_proc;
      Machine.exit_process machine cg_proc)
    [ Machine.Popcorn_shm; Machine.Stramash_kernel_os ];
  Format.printf "@.Both tenants compute correct results under concurrent cross-ISA migration.@."
