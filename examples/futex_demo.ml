(* Cross-ISA futex demo (paper §6.5, Fig. 13).

   Two threads share a futex-backed lock across the ISA boundary: the
   x86 origin thread locks, the Arm thread unlocks. Three kernel
   configurations are compared:

   - Popcorn: every remote futex op is a message protocol to the origin;
   - Stramash without the futex optimisation: same protocol over the
     fused kernel;
   - Stramash: the remote kernel walks the origin's futex queues directly
     over coherent shared memory and wakes waiters with a single IPI. *)

module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Fut = Stramash_workloads.Micro_futex

let configs =
  [
    ("popcorn-shm (message protocol)", Machine.Popcorn_shm);
    ("stramash, futex opt OFF", Machine.Stramash_no_futex_opt);
    ("stramash, futex opt ON", Machine.Stramash_kernel_os);
  ]

let () =
  let loops = 1000 in
  Format.printf "futex lock/unlock ping-pong, %d loops (origin locks, remote unlocks):@.@." loops;
  List.iter
    (fun (label, os) ->
      let spec = Fut.spec ~loops in
      let machine = Machine.create { Machine.default_config with os } in
      let proc, locker = Machine.load machine spec in
      let unlocker =
        Machine.spawn_thread machine proc ~at_point:Fut.unlocker_entry ~node:Node_id.Arm
      in
      let r = Runner.run_threads machine proc [ locker; unlocker ] spec in
      let count =
        match
          Machine.read_user machine ~proc ~node:Node_id.X86
            ~vaddr:Stramash_workloads.Npb_common.checksum_vaddr ~width:8
        with
        | Some v -> Int64.to_int v
        | None -> -1
      in
      Format.printf "  %-32s %9.3f ms  (%5.1f us/lock, %d msgs, locks=%d)@." label
        (Cycles.to_ms r.Runner.wall_cycles)
        (Cycles.to_us r.Runner.wall_cycles /. float_of_int loops)
        r.Runner.messages count)
    configs;
  Format.printf
    "@.The optimised path replaces the per-wake request/response protocol with direct@.";
  Format.printf "queue access plus one cross-ISA IPI (paper Fig. 13).@."
