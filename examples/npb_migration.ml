(* Run the NPB-like kernels with cross-ISA migration under every OS
   personality (paper Fig. 9 in miniature), checking results against the
   host-computed references. *)

module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Spec = Stramash_machine.Spec
module Node_id = Stramash_sim.Node_id
module W = Stramash_workloads

let check_i64 machine proc expected =
  match
    Machine.read_user machine ~proc ~node:Node_id.X86 ~vaddr:W.Npb_common.checksum_vaddr ~width:8
  with
  | Some got when got = expected -> "ok"
  | Some got -> Printf.sprintf "MISMATCH (got %Ld, want %Ld)" got expected
  | None -> "UNMAPPED"

let check_f64 machine proc expected =
  match
    Machine.read_user_f64 machine ~proc ~node:Node_id.X86 ~vaddr:W.Npb_common.checksum_vaddr
  with
  | Some got when got = expected -> "ok"
  | Some got -> Printf.sprintf "MISMATCH (got %.17g, want %.17g)" got expected
  | None -> "UNMAPPED"

let () =
  let specs =
    [
      ("is", W.Npb_is.spec (), `I64 (W.Npb_is.expected_checksum W.Npb_is.default));
      ("cg", W.Npb_cg.spec (), `F64 (W.Npb_cg.expected_checksum W.Npb_cg.default));
      ("mg", W.Npb_mg.spec (), `F64 (W.Npb_mg.expected_checksum W.Npb_mg.default));
      ("ft", W.Npb_ft.spec (), `F64 (W.Npb_ft.expected_checksum W.Npb_ft.default));
      ("ep", W.Npb_ep.spec (), `I64 (W.Npb_ep.expected_checksum W.Npb_ep.default));
    ]
  in
  List.iter
    (fun (name, spec, expected) ->
      Format.printf "@.== %s: %s ==@." name spec.Spec.description;
      List.iter
        (fun os ->
          let machine = Machine.create { Machine.default_config with os } in
          let proc, thread = Machine.load machine spec in
          let t0 = Sys.time () in
          let r = Runner.run machine proc thread spec in
          let host_s = Sys.time () -. t0 in
          let verdict =
            match expected with
            | `I64 v -> check_i64 machine proc v
            | `F64 v -> check_f64 machine proc v
          in
          Format.printf
            "  %-12s wall=%9.3f ms  instr=%9d  msgs=%6d  repl=%5d  [%s] (host %.1fs)@."
            (Machine.os_choice_name os)
            (Stramash_sim.Cycles.to_ms r.Runner.wall_cycles)
            r.Runner.instructions r.Runner.messages r.Runner.replicated_pages verdict host_s)
        Machine.all_os_choices)
    specs
