(* Explore the three hardware memory models (paper Fig. 3): the same
   remote-access microbenchmark under Separated, Shared (CXL pool) and
   Fully Shared, under both OS designs.

   Shows where each design's costs come from: Popcorn pays replication
   once then runs locally; Stramash pays nothing up front but reaches
   across the interconnect on cache misses — unless the model makes all
   memory local (Fully Shared). *)

module Layout = Stramash_mem.Layout
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Mem = Stramash_workloads.Micro_memaccess
module Cycles = Stramash_sim.Cycles

let () =
  let spec = Mem.spec Mem.Remote_access_origin in
  Format.printf "Remote reads of origin-owned memory (%s), measured window only:@.@."
    spec.Stramash_machine.Spec.description;
  Format.printf "%-14s | %-14s | %10s | %8s | %8s@." "OS" "hardware model" "time (ms)" "msgs"
    "repl.";
  Format.printf "%s@." (String.make 66 '-');
  List.iter
    (fun os ->
      List.iter
        (fun hw_model ->
          let machine = Machine.create { Machine.default_config with os; hw_model } in
          let proc, thread = Machine.load machine spec in
          let r = Runner.run machine proc thread spec in
          let span = Runner.phase_span r ~start:Mem.measure_start ~stop:Mem.measure_stop in
          Format.printf "%-14s | %-14s | %10.3f | %8d | %8d@." (Machine.os_choice_name os)
            (Layout.hw_model_to_string hw_model)
            (Cycles.to_ms span) r.Runner.messages r.Runner.replicated_pages)
        Layout.all_hw_models)
    [ Machine.Popcorn_shm; Machine.Stramash_kernel_os ];
  Format.printf
    "@.Note how Popcorn-SHM barely changes across models (it always replicates into local@.";
  Format.printf
    "memory), while Stramash tracks the hardware: slow over the CXL pool, at parity with@.";
  Format.printf "local memory under Fully Shared (the paper's Fig. 11 takeaway).@."
