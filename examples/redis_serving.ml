(* Network-serving application demo (paper §9.2.8, Fig. 14).

   A Redis-like server has migrated to the Arm island while its socket
   stays with the x86 origin kernel. Every request crosses the kernel
   boundary; the messaging substrate decides the cost. *)

module Machine = Stramash_machine.Machine
module Redis = Stramash_workloads.Redis
module Cycles = Stramash_sim.Cycles

let () =
  let requests = 5000 in
  let tcp = Redis.run ~os:Machine.Popcorn_tcp ~requests () in
  let shm = Redis.run ~os:Machine.Popcorn_shm ~requests () in
  let stramash = Redis.run ~os:Machine.Stramash_kernel_os ~requests () in
  Format.printf "Redis-like server, %d requests/op, 1024B payloads (speedup over Popcorn-TCP):@.@."
    requests;
  Format.printf "%-6s | %12s | %12s | %12s | %9s | %9s@." "op" "tcp us/req" "shm us/req"
    "stramash us" "shm x" "stramash x";
  Format.printf "%s@." (String.make 74 '-');
  List.iter
    (fun (t : Redis.result) ->
      let find rs = (List.find (fun (r : Redis.result) -> r.Redis.op = t.Redis.op) rs).Redis.cycles_per_request in
      let s = find shm and st = find stramash in
      Format.printf "%-6s | %12.2f | %12.2f | %12.2f | %8.2fx | %8.2fx@."
        (Redis.op_name t.Redis.op)
        (Cycles.to_us (int_of_float t.Redis.cycles_per_request))
        (Cycles.to_us (int_of_float s))
        (Cycles.to_us (int_of_float st))
        (t.Redis.cycles_per_request /. s)
        (t.Redis.cycles_per_request /. st))
    tcp;
  Format.printf
    "@.As in the paper, these numbers are functional validation: the shape (SHM ~4-10x,@.";
  Format.printf "Stramash up to ~12x) is the result, not the absolute values.@."
