(* stramash_cli — command-line front end for the Stramash reproduction.

   Subcommands:
     list                         show available experiments and workloads
     experiment <id>...           regenerate specific tables/figures
     npb <bench>                  run one NPB-like kernel under one config
     redis                        run the network-serving model
     futex <loops>                run the futex microbenchmark
     faults                       run the fault-injection campaign + audit
     chaos                        run the node-failure chaos campaign
     place                        run the page-placement campaign
     gray                         run the gray-failure breaker-on/off campaign
     serve                        run the open-loop serving campaign (tail SLOs)
     machine                      describe the simulated platform *)

open Cmdliner
module H = Stramash_harness
module W = Stramash_workloads
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Layout = Stramash_mem.Layout
module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Plan = Stramash_fault_inject.Plan
module Cache_sim = Stramash_cache.Cache_sim

let fmt = Format.std_formatter

(* ---------- shared arguments ---------- *)

let os_conv =
  let parse = function
    | "vanilla" -> Ok Machine.Vanilla
    | "popcorn-shm" -> Ok Machine.Popcorn_shm
    | "popcorn-tcp" -> Ok Machine.Popcorn_tcp
    | "stramash" -> Ok Machine.Stramash_kernel_os
    | "stramash-nofutexopt" -> Ok Machine.Stramash_no_futex_opt
    | s -> Error (`Msg (Printf.sprintf "unknown OS personality %S" s))
  in
  Arg.conv (parse, fun ppf os -> Format.pp_print_string ppf (Machine.os_choice_name os))

let hw_conv =
  let parse = function
    | "separated" -> Ok Layout.Separated
    | "shared" -> Ok Layout.Shared
    | "fully-shared" -> Ok Layout.Fully_shared
    | s -> Error (`Msg (Printf.sprintf "unknown hardware model %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Layout.hw_model_to_string m))

let os_arg =
  Arg.(
    value
    & opt os_conv Machine.Stramash_kernel_os
    & info [ "o"; "os" ] ~docv:"OS"
        ~doc:"OS personality: vanilla | popcorn-shm | popcorn-tcp | stramash | stramash-nofutexopt")

let hw_arg =
  Arg.(
    value
    & opt hw_conv Layout.Shared
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Hardware model: separated | shared | fully-shared")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the artifact-style per-node dump")

(* Fast-path engine selection: the default Fast mode and the Reference
   engine are cycle-identical by construction; --paranoid proves it on the
   actual run. *)
let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Cross-check every fast-path answer against the reference engine and audit cache/memory \
           invariants at scheduling-quantum boundaries; the run fails on the first divergence in \
           value, latency, or coherence state")

let reference_arg =
  Arg.(
    value & flag
    & info [ "reference" ]
        ~doc:"Disable the fast-path layers and run the pre-fast-path reference engine (baselines)")

let cache_mode_term =
  Term.(
    const (fun paranoid reference ->
        if paranoid then Cache_sim.Paranoid
        else if reference then Cache_sim.Reference
        else Cache_sim.Fast)
    $ paranoid_arg $ reference_arg)

(* Bench names resolve through the shared NPB table, the same one the
   bench harness's --perf/--domains sweeps and CI run. *)
let spec_of_bench = W.Npb_suite.spec_of_name

(* ---------- observability (--trace / --metrics-json / --trace-filter) ---------- *)

module Obs = Stramash_obs
module Trace = Stramash_obs.Trace

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a cycle-timestamped trace of the run to $(docv): Chrome trace-event JSON \
           (open in Perfetto or chrome://tracing), or a JSONL event stream when $(docv) \
           ends in .jsonl")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write a machine-readable metrics snapshot (cycle attribution + counters) to $(docv)")

let filter_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-filter" ] ~docv:"SUBSYS"
        ~doc:
          "Comma-separated subsystems to restrict tracing to (e.g. msg,ipi,futex); \
           default records every subsystem")

let obs_term = Term.(const (fun t m f -> (t, m, f)) $ trace_arg $ metrics_arg $ filter_arg)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Fail before the (possibly minutes-long) run, not after it. *)
let check_writable = function
  | None -> true
  | Some path -> (
      match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path with
      | oc ->
          close_out oc;
          true
      | exception Sys_error msg ->
          Format.eprintf "stramash_cli: cannot write output file: %s@." msg;
          false)

(* Install a tracer for the duration of [f] when either output flag is
   given, then render the sinks. Tracing stays completely off otherwise. *)
let run_with_obs (trace_file, metrics_file, filter) ?(extra = fun (_ : Obs.Snapshot.t) -> ())
    ?(fastpath = fun () -> []) f =
  match (trace_file, metrics_file) with
  | None, None -> f ()
  | _ when not (check_writable trace_file && check_writable metrics_file) -> 1
  | _ ->
      let filter =
        match filter with
        | None -> []
        | Some s ->
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun x -> x <> "")
      in
      let tracer = Trace.create ~filter () in
      Trace.install tracer;
      let finish () =
        Trace.uninstall ();
        (match trace_file with
        | Some path ->
            let data =
              if Filename.check_suffix path ".jsonl" then Trace.jsonl_string tracer
              else Trace.chrome_string tracer
            in
            write_file path data;
            Format.fprintf fmt "trace: %s (%d events recorded, %d dropped)@." path
              (Trace.recorded tracer) (Trace.dropped tracer)
        | None -> ());
        (match metrics_file with
        | Some path ->
            let snap = Obs.Snapshot.create () in
            Obs.Snapshot.add_trace snap tracer;
            Obs.Snapshot.add_causal snap tracer;
            extra snap;
            write_file path (Obs.Snapshot.to_string snap);
            Format.fprintf fmt "metrics: %s@." path
        | None -> ());
        H.Obs_report.print ~fastpath:(fastpath ()) fmt tracer
      in
      (match f () with
      | code ->
          finish ();
          code
      | exception e ->
          Trace.uninstall ();
          raise e)

(* ---------- list ---------- *)

let list_cmd =
  let run () =
    Format.fprintf fmt "Experiments (run with `stramash_cli experiment <id>`):@.";
    List.iter
      (fun e -> Format.fprintf fmt "  %-10s %s@." e.H.Experiments.id e.H.Experiments.title)
      H.Experiments.all;
    Format.fprintf fmt "@.NPB-like workloads (run with `stramash_cli npb <name>`):@.";
    Format.fprintf fmt "  %s@." (String.concat " " W.Npb_suite.all_names);
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiments and workloads") Term.(const run $ const ())

(* ---------- experiment ---------- *)

let experiment_cmd =
  let ids_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see `list`)")
  in
  let run ids obs =
    run_with_obs obs (fun () ->
        let rec go = function
          | [] -> 0
          | id :: rest -> (
              match H.Experiments.find id with
              | Some e ->
                  Format.fprintf fmt "@.=== %s: %s ===@." e.H.Experiments.id e.H.Experiments.title;
                  e.H.Experiments.run fmt;
                  go rest
              | None ->
                  Format.fprintf fmt "unknown experiment %s (try `stramash_cli list`)@." id;
                  1)
        in
        go ids)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one or more of the paper's tables/figures")
    Term.(const run $ ids_arg $ obs_term)

(* ---------- npb ---------- *)

let npb_cmd =
  let bench_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"is | cg | mg | ft | ep | lu | sp")
  in
  let run bench os hw_model verbose cache_mode obs =
    match spec_of_bench bench with
    | None ->
        Format.fprintf fmt "unknown benchmark %s@." bench;
        1
    | Some spec ->
        let last_result = ref None in
        let extra snap =
          match !last_result with
          | None -> ()
          | Some result ->
              Obs.Snapshot.add_counters snap "node_cycles"
                (List.map
                   (fun node ->
                     ( Node_id.to_string node,
                       result.Runner.node_cycles.(Node_id.index node) ))
                   Node_id.all);
              Obs.Snapshot.add_registry snap "cache" result.Runner.cache;
              Obs.Snapshot.add_counters snap "fastpath" (Runner.fastpath_counters result)
        in
        let fastpath () =
          match !last_result with None -> [] | Some r -> Runner.fastpath_counters r
        in
        run_with_obs obs ~extra ~fastpath (fun () ->
            let machine =
              Machine.create { Machine.default_config with os; hw_model; cache_mode }
            in
            let proc, thread = Machine.load machine spec in
            let result = Runner.run machine proc thread spec in
            last_result := Some result;
            Format.fprintf fmt
              "%s on %s/%s: wall %.3f ms, %d instructions, %d messages, %d replicated pages@."
              bench (Machine.os_choice_name os)
              (Layout.hw_model_to_string hw_model)
              (Cycles.to_ms result.Runner.wall_cycles)
              result.Runner.instructions result.Runner.messages result.Runner.replicated_pages;
            (if cache_mode <> Cache_sim.Reference then
               let hits = Array.fold_left ( + ) 0 result.Runner.ext.Runner.l0_hits in
               let total = hits + Array.fold_left ( + ) 0 result.Runner.ext.Runner.l0_misses in
               if total > 0 then
                 Format.fprintf fmt "fast-path L0: %d of %d accesses (%.1f%%)%s@." hits total
                   (100.0 *. float_of_int hits /. float_of_int total)
                   (if cache_mode = Cache_sim.Paranoid then "; paranoid cross-check passed" else ""));
            if verbose then Runner.pp_result fmt result;
            0)
  in
  Cmd.v
    (Cmd.info "npb" ~doc:"Run one NPB-like kernel with cross-ISA migration")
    Term.(const run $ bench_arg $ os_arg $ hw_arg $ verbose_arg $ cache_mode_term $ obs_term)

(* ---------- redis ---------- *)

let redis_cmd =
  let requests_arg =
    Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per op")
  in
  let run os requests obs =
    run_with_obs obs (fun () ->
        match os with
        | Machine.Vanilla ->
            Format.fprintf fmt "the redis model needs a migratable OS personality@.";
            1
        | _ ->
            List.iter
              (fun (r : W.Redis.result) ->
                Format.fprintf fmt "%-6s %10.0f cycles/request (%.2f us)@."
                  (W.Redis.op_name r.W.Redis.op) r.W.Redis.cycles_per_request
                  (Cycles.to_us (int_of_float r.W.Redis.cycles_per_request)))
              (W.Redis.run ~os ~requests ());
            0)
  in
  Cmd.v
    (Cmd.info "redis" ~doc:"Run the Redis-like network-serving model")
    Term.(const run $ os_arg $ requests_arg $ obs_term)

(* ---------- futex ---------- *)

let futex_cmd =
  let loops_arg = Arg.(value & pos 0 int 1000 & info [] ~docv:"LOOPS" ~doc:"Lock/unlock loops") in
  let run loops obs =
    run_with_obs obs (fun () ->
        List.iter
          (fun (label, wall) -> Format.fprintf fmt "%-34s %10.3f ms@." label (Cycles.to_ms wall))
          (H.Micro_experiments.fig13_walls ~loops);
        0)
  in
  Cmd.v
    (Cmd.info "futex" ~doc:"Run the futex microbenchmark")
    Term.(const run $ loops_arg $ obs_term)

(* ---------- campaign plumbing (shared by faults / chaos / place) ---------- *)

(* Every campaign subcommand shares one contract: a `-b` bench restricted
   to the fault-campaign quartet, and exit codes 0 = campaign ran clean,
   1 = invariant violation or unrecovered failure, 2 = unusable
   arguments. The bench guard fails fast — before observability sinks are
   installed or a possibly minutes-long run starts. *)
let campaign_bench_arg =
  Arg.(value & opt string "is" & info [ "b"; "bench" ] ~docv:"BENCH" ~doc:"is | cg | mg | ft")

let guard_campaign_bench ~campaign bench k =
  if List.mem bench H.Fault_experiments.benches then k ()
  else begin
    Format.eprintf "unknown benchmark %s (%s campaign runs %s)@." bench campaign
      (String.concat " | " H.Fault_experiments.benches);
    H.Chaos_experiments.exit_code H.Chaos_experiments.Unknown_bench
  end

let verdict_exit = H.Chaos_experiments.exit_code

(* One structural validation shared by every campaign entry point: a bad
   flag combination fails fast with a message and exit 2, before
   observability sinks are installed or a machine is built. *)
let guard_plan_config config k =
  match Plan.validate config with
  | Ok () -> k ()
  | Error msg ->
      Format.eprintf "invalid fault-plan config: %s@." msg;
      verdict_exit H.Chaos_experiments.Unknown_bench

(* Every campaign's JSON snapshot echoes the plan seed and the config
   fingerprint, so any output file traces back to its exact parameters. *)
let add_campaign_stamp snap ~seed ~fingerprint =
  Obs.Snapshot.add_counters snap "campaign"
    [ ("seed", seed); ("config_fingerprint", fingerprint) ]

let stamp_from_registry snap reg =
  add_campaign_stamp snap ~seed:(Metrics.get reg "plan.seed")
    ~fingerprint:(Metrics.get reg "plan.config_fingerprint")

(* ---------- faults ---------- *)

let faults_cmd =
  let seed_arg =
    Arg.(value & opt int64 0xC0FFEEL & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Machine seed; the fault plan derives from it, so the same seed replays the same faults")
  in
  let rate name doc default =
    Arg.(value & opt float default & info [ name ] ~docv:"RATE" ~doc)
  in
  let drop_arg = rate "drop-rate" "Message-drop probability per transmission attempt" 0.05 in
  let ipi_arg = rate "ipi-loss" "IPI loss (and jitter) probability" 0.02 in
  let walk_arg = rate "walk-fail" "Transient remote PTE read-failure probability" 0.02 in
  let ptl_arg = rate "ptl-timeout" "Page-table-lock acquisition timeout probability" 0.01 in
  let alloc_arg = rate "alloc-fail" "Injected frame-allocator exhaustion probability" 0.005 in
  let run seed bench drop ipi walk ptl alloc obs =
    guard_campaign_bench ~campaign:"faults" bench (fun () ->
        let config =
          H.Fault_experiments.plan_config ~drop_rate:drop ~ipi_loss:ipi ~walk_fail:walk
            ~ptl_timeout:ptl ~alloc_fail:alloc ()
        in
        guard_plan_config config (fun () ->
            let plan_metrics = ref None in
            let extra snap =
              match !plan_metrics with
              | Some reg ->
                  Obs.Snapshot.add_registry snap "fault_plan" reg;
                  stamp_from_registry snap reg
              | None -> ()
            in
            run_with_obs obs ~extra (fun () ->
                verdict_exit
                  (if
                     H.Fault_experiments.campaign fmt ~seed ~bench ~config
                       ~on_metrics:(fun reg -> plan_metrics := Some reg)
                       ()
                   then H.Chaos_experiments.Clean
                   else H.Chaos_experiments.Violations))))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a deterministic fault-injection campaign and audit kernel invariants")
    Term.(
      const run $ seed_arg $ campaign_bench_arg $ drop_arg $ ipi_arg $ walk_arg $ ptl_arg
      $ alloc_arg $ obs_term)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let seed_arg =
    Arg.(value & opt int64 0xC4A05L & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Campaign seed; schedule jitter and the machine both derive from it, so the same \
               seed replays the same kills, restarts, and recoveries byte-for-byte")
  in
  let kills_arg =
    Arg.(value & opt int 3 & info [ "k"; "kills" ] ~docv:"N"
         ~doc:"Kill/restart cycles to inject, alternating between the two kernel instances")
  in
  let downtime_arg =
    Arg.(value & opt int H.Chaos_experiments.default_downtime
         & info [ "d"; "downtime" ] ~docv:"CYCLES"
             ~doc:"Cycles a killed node stays down before restarting (clamped to half the kill gap)")
  in
  let placement_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "placement" ] ~docv:"POLICY"
          ~doc:
            "Attach a page-placement engine with this policy (static-stramash | static-shm | \
             adaptive) to both the baseline and the chaos run, so degraded replica collapses \
             and restart reconciles happen under the campaign's audits")
  in
  let soak_arg =
    Arg.(value & opt int 1 & info [ "soak" ] ~docv:"CELLS"
         ~doc:"Run $(docv) independent campaign cells at derived seeds (seed, seed+1, ...); \
               the soak verdict is the worst across cells")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
         ~doc:"Host domains to spread soak cells across. Cell outputs are buffered and emitted \
               in cell order, so the soak's output and verdicts are byte-identical for any $(docv)")
  in
  let soak_json_arg =
    Arg.(value & opt (some string) None & info [ "soak-json" ] ~docv:"FILE"
         ~doc:"Write the per-cell soak verdicts as JSON to $(docv) (deterministic: contains no \
               timings or host facts, so 1-domain and N-domain soaks write identical files)")
  in
  let run seed bench kills downtime cache_mode placement soak domains soak_json obs =
    guard_campaign_bench ~campaign:"chaos" bench (fun () ->
        match placement with
        | Some p when Stramash_placement.Policy.of_string p = None ->
            Format.eprintf "unknown placement policy %s (static-stramash | static-shm | adaptive)@."
              p;
            verdict_exit H.Chaos_experiments.Unknown_bench
        | _ ->
            let placement = Option.map (fun p ->
                Option.get (Stramash_placement.Policy.of_string p)) placement in
            guard_plan_config Plan.default (fun () ->
                if soak < 1 || domains < 1 then begin
                  Format.eprintf "chaos: --soak and --domains must be >= 1@.";
                  verdict_exit H.Chaos_experiments.Unknown_bench
                end
                else if soak > 1 || domains > 1 || soak_json <> None then begin
                  (* Soak mode: cells render into private buffers; the
                     process-global tracer cannot be shared across them. *)
                  let trace_file, metrics_file, _ = obs in
                  if trace_file <> None || metrics_file <> None then begin
                    Format.eprintf
                      "chaos: --trace/--metrics-json capture one campaign through the \
                       process-global tracer and cannot be combined with a soak (--soak/--domains)@.";
                    verdict_exit H.Chaos_experiments.Unknown_bench
                  end
                  else if not (check_writable soak_json) then
                    verdict_exit H.Chaos_experiments.Unknown_bench
                  else begin
                    let verdict, cells =
                      H.Chaos_experiments.soak fmt ~seed ~bench ~kills ~downtime ~cache_mode
                        ?placement ~cells:soak ~domains ()
                    in
                    (match soak_json with
                    | Some path ->
                        let module Json = Obs.Json in
                        let json =
                          Json.Obj
                            [
                              ("schema", Json.String "stramash-chaos-soak/1");
                              ("bench", Json.String bench);
                              ("kills", Json.Int kills);
                              ( "cells",
                                Json.List
                                  (List.map
                                     (fun (cell, seed, v) ->
                                       Json.Obj
                                         [
                                           ("cell", Json.Int cell);
                                           ("seed", Json.Int (Int64.to_int seed));
                                           ( "verdict",
                                             Json.String
                                               (H.Chaos_experiments.verdict_to_string v) );
                                         ])
                                     cells) );
                              ( "verdict",
                                Json.String (H.Chaos_experiments.verdict_to_string verdict) );
                            ]
                        in
                        write_file path (Obs.Json.to_string json ^ "\n");
                        Format.fprintf fmt "soak json: %s@." path
                    | None -> ());
                    verdict_exit verdict
                  end
                end
                else begin
                  let plan_metrics = ref None in
                  let extra snap =
                    match !plan_metrics with
                    | Some reg ->
                        Obs.Snapshot.add_registry snap "fault_plan" reg;
                        stamp_from_registry snap reg
                    | None -> ()
                  in
                  run_with_obs obs ~extra (fun () ->
                      verdict_exit
                        (H.Chaos_experiments.campaign fmt ~seed ~bench ~kills ~downtime
                           ~cache_mode ?placement
                           ~on_metrics:(fun reg -> plan_metrics := Some reg)
                           ()))
                end))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a deterministic node-failure chaos campaign: crash-stop kernel kills, \
          degraded-mode fallback, checkpoint/restore recovery, and invariant audits")
    Term.(
      const run $ seed_arg $ campaign_bench_arg $ kills_arg $ downtime_arg $ cache_mode_term
      $ placement_arg $ soak_arg $ domains_arg $ soak_json_arg $ obs_term)

(* ---------- place ---------- *)

let place_cmd =
  let seed_arg =
    Arg.(value & opt int64 0x91ACEL & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Machine seed; placement decisions derive from the seeded run, so the same seed \
               replays the same replicate/collapse/migrate stream byte-for-byte")
  in
  let policy_conv =
    let parse s =
      match Stramash_placement.Policy.of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown placement policy %S" s))
    in
    Arg.conv
      (parse, fun ppf p -> Format.pp_print_string ppf (Stramash_placement.Policy.to_string p))
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Stramash_placement.Policy.Adaptive
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Placement policy: static-stramash | static-shm | adaptive")
  in
  let epoch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "e"; "epoch" ] ~docv:"QUANTA"
          ~doc:"Scheduling quanta per placement epoch (default: engine default)")
  in
  let run seed bench policy epoch cache_mode obs =
    guard_campaign_bench ~campaign:"placement" bench (fun () ->
        guard_plan_config Plan.default (fun () ->
            let placement_metrics = ref None in
            let extra snap =
              (match !placement_metrics with
              | Some reg -> Obs.Snapshot.add_registry snap "placement" reg
              | None -> ());
              (* No fault plan is armed here; the stamp still records the
                 seed and the (default) config the run was built from. *)
              add_campaign_stamp snap ~seed:(Int64.to_int seed)
                ~fingerprint:(Plan.config_fingerprint Plan.default)
            in
            run_with_obs obs ~extra (fun () ->
                verdict_exit
                  (H.Placement_experiments.campaign fmt ~seed ~bench ~policy ?epoch ~cache_mode
                     ~on_metrics:(fun reg -> placement_metrics := Some reg)
                     ()))))
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Run the page-placement campaign: a seeded policy run with kernel invariant audits, a \
          determinism replay, and a Paranoid-engine cross-check")
    Term.(
      const run $ seed_arg $ campaign_bench_arg $ policy_arg $ epoch_arg $ cache_mode_term
      $ obs_term)

(* ---------- gray ---------- *)

let gray_cmd =
  let seed_arg =
    Arg.(value & opt int64 0x64A7L & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Campaign seed; the gray schedule's jitter and both machines derive from it, so \
               the same seed replays the same slow-downs, flaps, and breaker decisions \
               byte-for-byte")
  in
  let factor_arg =
    Arg.(value & opt float H.Gray_experiments.default_slow_factor
         & info [ "f"; "factor" ] ~docv:"FACTOR"
             ~doc:"Service-time inflation inside the slow-down window (>= 1.0)")
  in
  let run seed bench factor cache_mode obs =
    guard_campaign_bench ~campaign:"gray" bench (fun () ->
        guard_plan_config (H.Gray_experiments.probe_config ~factor) (fun () ->
            let registries = ref [] in
            let extra snap =
              List.iter
                (fun (label, reg) ->
                  Obs.Snapshot.add_registry snap label reg;
                  if label = "gray_on" then stamp_from_registry snap reg)
                (List.rev !registries)
            in
            run_with_obs obs ~extra (fun () ->
                verdict_exit
                  (H.Gray_experiments.campaign fmt ~seed ~bench ~factor ~cache_mode
                     ~on_metrics:(fun ~label reg ->
                       registries := (label, reg) :: !registries)
                     ()))))
  in
  Cmd.v
    (Cmd.info "gray"
       ~doc:
         "Run a deterministic gray-failure campaign: a slow-but-alive origin node (latency \
          inflation, link flaps, PTL stalls), executed breaker-off then breaker-on, with \
          per-operation latency percentiles comparing the two")
    Term.(const run $ seed_arg $ campaign_bench_arg $ factor_arg $ cache_mode_term $ obs_term)

(* ---------- scrub ---------- *)

let scrub_cmd =
  let seed_arg =
    Arg.(value & opt int64 0x5DCL & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Campaign seed; the corruption schedule, any kill schedule, and the machine all \
               derive from it, so the same seed replays the same flips, detections, and \
               repairs byte-for-byte")
  in
  let flips_arg =
    Arg.(value & opt int H.Integrity_experiments.default_flips
         & info [ "f"; "flips" ] ~docv:"N"
             ~doc:"Page bit-flip injection events to schedule across the run")
  in
  let msg_rate_arg =
    Arg.(value & opt float H.Integrity_experiments.default_msg_rate
         & info [ "msg-rate" ] ~docv:"RATE"
             ~doc:"Per-message payload-corruption probability (half of these truncate instead \
                   of flipping bytes); detected by the CRC32 frame and repaired by retransmit")
  in
  let pte_rate_arg =
    Arg.(value & opt float H.Integrity_experiments.default_pte_rate
         & info [ "pte-rate" ] ~docv:"RATE"
             ~doc:"Per-install stale-PTE corruption probability in the remote walker; detected \
                   by the verify-after-install read-back and repaired by reinstall")
  in
  let kills_arg =
    Arg.(value & opt int 0 & info [ "k"; "kills" ] ~docv:"N"
         ~doc:"Kill/restart cycles to fold into the same plan; every death's checkpoint is \
               torn, proving the versioned-header rejection and the shadow fallback")
  in
  let soak_arg =
    Arg.(value & opt int 1 & info [ "soak" ] ~docv:"CELLS"
         ~doc:"Run $(docv) independent campaign cells at derived seeds (seed, seed+1, ...); \
               cells default to one torn-checkpoint kill each, composing the corruption and \
               kill/restart schedules; the soak verdict is the worst across cells")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
         ~doc:"Host domains to spread soak cells across. Cell outputs are buffered and emitted \
               in cell order, so the soak's output and verdicts are byte-identical for any $(docv)")
  in
  let soak_json_arg =
    Arg.(value & opt (some string) None & info [ "soak-json" ] ~docv:"FILE"
         ~doc:"Write the per-cell soak verdicts as JSON to $(docv) (deterministic: contains no \
               timings or host facts, so 1-domain and N-domain soaks write identical files)")
  in
  let run seed bench flips msg_rate pte_rate kills cache_mode soak domains soak_json obs =
    guard_campaign_bench ~campaign:"scrub" bench (fun () ->
        guard_plan_config
          (H.Integrity_experiments.probe_config ~flips ~msg_rate ~pte_rate)
          (fun () ->
            if soak < 1 || domains < 1 then begin
              Format.eprintf "scrub: --soak and --domains must be >= 1@.";
              verdict_exit H.Chaos_experiments.Unknown_bench
            end
            else if soak > 1 || domains > 1 || soak_json <> None then begin
              let trace_file, metrics_file, _ = obs in
              if trace_file <> None || metrics_file <> None then begin
                Format.eprintf
                  "scrub: --trace/--metrics-json capture one campaign through the \
                   process-global tracer and cannot be combined with a soak (--soak/--domains)@.";
                verdict_exit H.Chaos_experiments.Unknown_bench
              end
              else if not (check_writable soak_json) then
                verdict_exit H.Chaos_experiments.Unknown_bench
              else begin
                let verdict, cells =
                  H.Integrity_experiments.soak fmt ~seed ~bench ~flips ~msg_rate ~pte_rate
                    ~kills:(max 1 kills) ~cache_mode ~cells:soak ~domains ()
                in
                (match soak_json with
                | Some path ->
                    let module Json = Obs.Json in
                    let json =
                      Json.Obj
                        [
                          ("schema", Json.String "stramash-scrub-soak/1");
                          ("bench", Json.String bench);
                          ("flips", Json.Int flips);
                          ("kills", Json.Int (max 1 kills));
                          ( "cells",
                            Json.List
                              (List.map
                                 (fun (cell, seed, v) ->
                                   Json.Obj
                                     [
                                       ("cell", Json.Int cell);
                                       ("seed", Json.Int (Int64.to_int seed));
                                       ( "verdict",
                                         Json.String
                                           (H.Chaos_experiments.verdict_to_string v) );
                                     ])
                                 cells) );
                          ( "verdict",
                            Json.String (H.Chaos_experiments.verdict_to_string verdict) );
                        ]
                    in
                    write_file path (Obs.Json.to_string json ^ "\n");
                    Format.fprintf fmt "soak json: %s@." path
                | None -> ());
                verdict_exit verdict
              end
            end
            else begin
              let registries = ref [] in
              let extra snap =
                List.iter
                  (fun (label, reg) ->
                    Obs.Snapshot.add_registry snap label reg;
                    if label = "scrub" then stamp_from_registry snap reg)
                  (List.rev !registries)
              in
              run_with_obs obs ~extra (fun () ->
                  verdict_exit
                    (H.Integrity_experiments.campaign fmt ~seed ~bench ~flips ~msg_rate
                       ~pte_rate ~kills ~cache_mode
                       ~on_metrics:(fun ~label reg ->
                         registries := (label, reg) :: !registries)
                       ()))
            end))
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Run a deterministic silent-data-corruption campaign: seeded page bit flips, message \
          corruption, stale PTE installs and torn checkpoints, detected by CRC framing, a \
          background page scrubber and verify-after-install, and healed by replica-backed \
          repair, retransmit, and checkpoint fallback")
    Term.(
      const run $ seed_arg $ campaign_bench_arg $ flips_arg $ msg_rate_arg $ pte_rate_arg
      $ kills_arg $ cache_mode_term $ soak_arg $ domains_arg $ soak_json_arg $ obs_term)

(* ---------- serve (open-loop serving campaign) ---------- *)

let serve_cmd =
  let module Serve = Stramash_serve.Serve in
  let seed_arg =
    Arg.(value & opt int64 0x5E12E5L & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Campaign seed; the arrival schedule, key stream, fault schedules and machine all \
               derive from it, so the same seed replays the same campaign byte-for-byte")
  in
  let keys_arg =
    Arg.(value & opt int (1 lsl 20) & info [ "K"; "keys" ] ~docv:"N"
         ~doc:"Keyspace size (64 B slots in a real process segment; default 1 Mi keys)")
  in
  let theta_arg =
    Arg.(value & opt float 0.99 & info [ "theta" ] ~docv:"T"
         ~doc:"Zipfian popularity exponent (> 0; rank 0 is the hottest key)")
  in
  let rate_arg =
    Arg.(value & opt float 20_000.0 & info [ "r"; "rate" ] ~docv:"RPS"
         ~doc:"Open-loop arrival rate in requests per second; arrivals are stamped by the \
               schedule, never by the previous reply")
  in
  let requests_arg =
    Arg.(value & opt int 20_000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per cell")
  in
  let payload_arg =
    Arg.(value & opt int 1024 & info [ "payload" ] ~docv:"BYTES" ~doc:"Value payload per request")
  in
  let factor_arg =
    Arg.(value & opt float 3.0 & info [ "factor" ] ~docv:"F"
         ~doc:"Gray slow-down inflation factor for the gray-composed cell")
  in
  let comp name doc =
    Arg.(value & opt bool true & info [ name ] ~docv:"BOOL" ~doc)
  in
  let placement_arg = comp "placement" "Include the adaptive-placement-composed cell" in
  let chaos_arg = comp "chaos" "Include the chaos kill/restart-composed cell" in
  let gray_arg = comp "gray" "Include the gray slow-down-composed cell" in
  let scrub_arg = comp "scrub" "Include the corruption + scrubber-composed cell" in
  let soak_arg =
    Arg.(value & opt int 1 & info [ "soak" ] ~docv:"CELLS"
         ~doc:"Run $(docv) independent campaigns at derived seeds (seed, seed+1, ...); the soak \
               verdict is the worst across cells")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
         ~doc:"Host domains to spread soak cells across. Cell outputs are buffered and emitted \
               in cell order, so the soak's output and verdicts are byte-identical for any $(docv)")
  in
  let soak_json_arg =
    Arg.(value & opt (some string) None & info [ "soak-json" ] ~docv:"FILE"
         ~doc:"Write the per-cell soak verdicts as JSON to $(docv) (deterministic: contains no \
               timings or host facts, so 1-domain and N-domain soaks write identical files)")
  in
  let run seed keys theta rate requests payload factor placement chaos gray scrub cache_mode soak
      domains soak_json obs =
    (* Fail fast on an unusable config — before sinks are installed or a
       machine is built — with the shared exit-2 contract. *)
    let probe =
      { Serve.default with Serve.keys; theta; rate; requests; payload; seed; cache_mode }
    in
    match Serve.validate probe with
    | Error msg ->
        Format.eprintf "invalid serve config: %s@." msg;
        verdict_exit H.Chaos_experiments.Unknown_bench
    | Ok () ->
        if soak < 1 || domains < 1 then begin
          Format.eprintf "serve: --soak and --domains must be >= 1@.";
          verdict_exit H.Chaos_experiments.Unknown_bench
        end
        else if soak > 1 || domains > 1 || soak_json <> None then begin
          let trace_file, metrics_file, _ = obs in
          if trace_file <> None || metrics_file <> None then begin
            Format.eprintf
              "serve: --trace/--metrics-json capture one campaign through the process-global \
               tracer and cannot be combined with a soak (--soak/--domains)@.";
            verdict_exit H.Chaos_experiments.Unknown_bench
          end
          else if not (check_writable soak_json) then
            verdict_exit H.Chaos_experiments.Unknown_bench
          else begin
            let verdict, cells =
              H.Serve_experiments.soak fmt ~seed ~keys ~rate ~requests ~cache_mode ~cells:soak
                ~domains ()
            in
            (match soak_json with
            | Some path ->
                let module Json = Obs.Json in
                let json =
                  Json.Obj
                    [
                      ("schema", Json.String "stramash-serve-soak/1");
                      ("keys", Json.Int keys);
                      ("rate_rps", Json.Float rate);
                      ("requests", Json.Int requests);
                      ( "cells",
                        Json.List
                          (List.map
                             (fun (cell, seed, v) ->
                               Json.Obj
                                 [
                                   ("cell", Json.Int cell);
                                   ("seed", Json.Int (Int64.to_int seed));
                                   ( "verdict",
                                     Json.String (H.Serve_experiments.verdict_to_string v) );
                                 ])
                             cells) );
                      ("verdict", Json.String (H.Serve_experiments.verdict_to_string verdict));
                    ]
                in
                write_file path (Obs.Json.to_string json ^ "\n");
                Format.fprintf fmt "soak json: %s@." path
            | None -> ());
            verdict_exit verdict
          end
        end
        else begin
          let serve_metrics = ref [] in
          let extra snap =
            List.iter
              (fun (label, reg) -> Obs.Snapshot.add_registry snap ("serve_" ^ label) reg)
              (List.rev !serve_metrics);
            add_campaign_stamp snap ~seed:(Int64.to_int seed)
              ~fingerprint:(Plan.config_fingerprint Plan.default)
          in
          run_with_obs obs ~extra (fun () ->
              verdict_exit
                (H.Serve_experiments.campaign fmt ~seed ~keys ~theta ~rate ~requests ~payload
                   ~cache_mode ~placement ~chaos ~gray ~scrub ~factor
                   ~on_metrics:(fun ~label reg ->
                     serve_metrics := (label, reg) :: !serve_metrics)
                   ()))
        end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the open-loop serving campaign: million-key Zipfian request harness with \
          per-request tail-latency SLOs, measured under Popcorn and Stramash and composed with \
          chaos kill/restart, gray slow-down, corruption scrubbing, and adaptive placement")
    Term.(
      const run $ seed_arg $ keys_arg $ theta_arg $ rate_arg $ requests_arg $ payload_arg
      $ factor_arg $ placement_arg $ chaos_arg $ gray_arg $ scrub_arg $ cache_mode_term
      $ soak_arg $ domains_arg $ soak_json_arg $ obs_term)

(* ---------- obs (offline causal-trace analysis) ---------- *)

module Causal = Stramash_obs.Causal

(* Snapshot files store the causal sections pre-computed; rebuild blame
   rows from the JSON so the same table renderer serves both inputs. *)
let blame_rows_of_json json =
  match Obs.Json.get_list json with
  | None -> []
  | Some rows ->
      List.filter_map
        (fun row ->
          let int k = Option.bind (Obs.Json.member k row) Obs.Json.get_int in
          let str k = Option.bind (Obs.Json.member k row) Obs.Json.get_string in
          match (str "subsys", str "op") with
          | Some subsys, Some op ->
              let get k = Option.value ~default:0 (int k) in
              Some
                {
                  Causal.b_subsys = subsys;
                  b_op = op;
                  b_hops = get "hops";
                  b_cycles = get "cycles";
                  b_node = [| get "x86_cycles"; get "arm_cycles" |];
                }
          | _ -> None)
        rows

let blocked_rows_of_json json =
  let tbl = Hashtbl.create 8 in
  (match Obs.Json.get_obj json with
  | None -> ()
  | Some nodes ->
      List.iter
        (fun (node_name, fields) ->
          match
            ( List.find_index (fun n -> Node_id.to_string n = node_name) Node_id.all,
              Obs.Json.get_obj fields )
          with
          | Some idx, Some fields ->
              List.iter
                (fun (subsys, v) ->
                  if subsys <> "total" then
                    match Obs.Json.get_int v with
                    | Some cycles ->
                        let row =
                          match Hashtbl.find_opt tbl subsys with
                          | Some row -> row
                          | None ->
                              let row = Array.make (List.length Node_id.all) 0 in
                              Hashtbl.add tbl subsys row;
                              row
                        in
                        row.(idx) <- row.(idx) + cycles
                    | None -> ())
                fields
          | _ -> ())
        nodes);
  Hashtbl.fold (fun s row acc -> (s, row) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_exemplar (f : Causal.flow) =
  Format.fprintf fmt "  flow %d: %s.%s on %s, %d cycles, %d spans@." f.Causal.f_id
    f.Causal.f_root_subsys f.Causal.f_root_op
    (Node_id.to_string (Node_id.of_index f.Causal.f_node))
    f.Causal.f_cycles f.Causal.f_spans;
  List.iter
    (fun (h : Causal.hop) ->
      Format.fprintf fmt "    %-4s %s.%s %d@."
        (Node_id.to_string (Node_id.of_index h.Causal.h_node))
        h.Causal.h_subsys h.Causal.h_op h.Causal.h_cycles)
    f.Causal.f_path

let obs_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A --trace output (Chrome trace-event JSON, or JSONL) or a --metrics-json snapshot \
             with causal sections")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"OUT"
          ~doc:
            "Write a folded-stack flamegraph to $(docv) (one 'node;frames count' line per stack; \
             feed to flamegraph.pl or speedscope). Needs a trace file, not a snapshot")
  in
  let percentile_arg =
    Arg.(
      value & opt float 0.99
      & info [ "percentile" ] ~docv:"P" ~doc:"Tail threshold for exemplar flows (0 < P < 1)")
  in
  let exemplars_arg =
    Arg.(value & opt int 8 & info [ "exemplars" ] ~docv:"N" ~doc:"Tail exemplar traces to keep")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Blame-table rows to print (0 = all)")
  in
  let run file flame percentile exemplars top =
    let contents =
      match open_in_bin file with
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Some s
      | exception Sys_error msg ->
          Format.eprintf "stramash_cli obs: %s@." msg;
          None
    in
    match contents with
    | None -> 2
    | Some contents -> (
        let snapshot_sections =
          match Obs.Json.parse (String.trim contents) with
          | Ok json -> (
              match (Obs.Json.member "critical_path" json, Obs.Json.member "blocked_on_remote" json) with
              | Some cp, Some blocked -> Some (cp, blocked)
              | _ -> None)
          | Error _ -> None
        in
        match snapshot_sections with
        | Some (cp, blocked) ->
            if flame <> None then begin
              Format.eprintf
                "stramash_cli obs: --flame needs a trace file; a snapshot has no event stream@.";
              2
            end
            else begin
              let flows = Option.bind (Obs.Json.member "flows" cp) Obs.Json.get_int in
              let cross = Option.bind (Obs.Json.member "cross_node_flows" cp) Obs.Json.get_int in
              (* No file name in the report body: same-seed runs must
                 produce byte-identical output whatever the paths are. *)
              Format.fprintf fmt "snapshot: %d flows, %d cross-node@."
                (Option.value ~default:0 flows)
                (Option.value ~default:0 cross);
              H.Report.print fmt
                (H.Obs_report.blame_report ~top
                   (blame_rows_of_json
                      (Option.value ~default:(Obs.Json.List []) (Obs.Json.member "blame" cp))));
              H.Obs_report.print_blocked_rows fmt (blocked_rows_of_json blocked);
              0
            end
        | None -> (
            match Causal.events_of_string contents with
            | Error msg ->
                Format.eprintf "stramash_cli obs: cannot read %s: %s@." file msg;
                2
            | Ok events -> (
                match Causal.Reservoir.create ~percentile ~max_keep:exemplars () with
                | exception Invalid_argument msg ->
                    Format.eprintf "stramash_cli obs: %s@." msg;
                    2
                | reservoir ->
                    let flows = Causal.flows_of_events events in
                    let cross = Causal.cross_node_flows flows in
                    Format.fprintf fmt "trace: %d events, %d flows, %d cross-node@."
                      (List.length events) (List.length flows) (List.length cross);
                    H.Report.print fmt (H.Obs_report.blame_report ~top (Causal.blame flows));
                    H.Obs_report.print_blocked_rows fmt (Causal.blocked_of_flows flows);
                    List.iter (Causal.Reservoir.offer reservoir) flows;
                    let threshold, tail = Causal.Reservoir.finalize reservoir in
                    if tail <> [] then begin
                      Format.fprintf fmt "tail exemplars (p%g >= %d cycles over %d flows):@."
                        (100.0 *. percentile) threshold
                        (Causal.Reservoir.count reservoir);
                      List.iter print_exemplar tail
                    end;
                    (match flame with
                    | None -> ()
                    | Some out ->
                        write_file out (Causal.folded events);
                        Format.fprintf fmt "flamegraph: %s@." out);
                    0)))
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Analyse a trace or metrics snapshot offline: assemble causal flows, print the \
          critical-path blame table, the blocked-on-remote summary, and tail-exemplar traces; \
          optionally export a folded-stack flamegraph")
    Term.(const run $ file_arg $ flame_arg $ percentile_arg $ exemplars_arg $ top_arg)

(* ---------- disasm ---------- *)

let disasm_cmd =
  let bench_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"is | cg | mg | ft | ep | lu | sp")
  in
  let isa_conv =
    let parse = function
      | "x86" -> Ok Node_id.X86
      | "arm" -> Ok Node_id.Arm
      | s -> Error (`Msg (Printf.sprintf "unknown ISA %S (x86 | arm)" s))
    in
    Arg.conv (parse, Node_id.pp)
  in
  let isa_arg =
    Arg.(value & opt isa_conv Node_id.X86 & info [ "i"; "isa" ] ~docv:"ISA" ~doc:"x86 | arm")
  in
  let limit_arg =
    Arg.(value & opt int 80 & info [ "n"; "limit" ] ~docv:"N" ~doc:"Instructions to print (0 = all)")
  in
  let run bench isa limit =
    match spec_of_bench bench with
    | None ->
        Format.fprintf fmt "unknown benchmark %s@." bench;
        1
    | Some spec ->
        let image = Stramash_isa.Codegen.lower ~isa spec.Stramash_machine.Spec.mir in
        let rendered = Format.asprintf "%a" Stramash_isa.Machine.pp_program image in
        let lines = String.split_on_char '\n' rendered in
        let shown = if limit = 0 then lines else List.filteri (fun i _ -> i <= limit) lines in
        List.iter (Format.fprintf fmt "%s@.") shown;
        if limit <> 0 && List.length lines > limit + 1 then
          Format.fprintf fmt "... (%d more instructions; --limit 0 for all)@."
            (List.length lines - limit - 1);
        0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload's image for one ISA")
    Term.(const run $ bench_arg $ isa_arg $ limit_arg)

(* ---------- machine ---------- *)

let machine_cmd =
  let run () =
    Format.fprintf fmt "Simulated platform (paper Figs. 1, 3, 4):@.";
    Format.fprintf fmt "  nodes: x86-64 island + AArch64 island, cache-coherent shared memory@.";
    Format.fprintf fmt "  physical memory: %d GB total@." (Layout.total_memory / Stramash_mem.Addr.gib 1);
    Format.fprintf fmt "  x86 private:  %a@." Layout.pp_region Layout.x86_private;
    Format.fprintf fmt "  arm private:  %a@." Layout.pp_region Layout.arm_private;
    Format.fprintf fmt "  message ring: %a@." Layout.pp_region Layout.message_ring;
    Format.fprintf fmt "  global pool:  %a@." Layout.pp_region Layout.pool;
    Format.fprintf fmt "  canonical clock: %.1f GHz; cross-ISA IPI: %.1f us; TCP RTT: 75 us@."
      Cycles.frequency_ghz
      (Cycles.to_us Stramash_interconnect.Ipi.cross_isa_ipi_cycles);
    H.Validation.table2 fmt;
    0
  in
  Cmd.v (Cmd.info "machine" ~doc:"Describe the simulated platform") Term.(const run $ const ())

let () =
  (* The interpreter's Int64 register file allocates on every write; a
     larger minor heap keeps that churn out of the collector's way. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
  let info =
    Cmd.info "stramash_cli" ~version:"1.0.0"
      ~doc:"Fused-kernel OS (Stramash, ASPLOS'25) reproduction toolkit"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            experiment_cmd;
            npb_cmd;
            redis_cmd;
            futex_cmd;
            faults_cmd;
            chaos_cmd;
            place_cmd;
            gray_cmd;
            scrub_cmd;
            serve_cmd;
            obs_cmd;
            machine_cmd;
            disasm_cmd;
          ]))
